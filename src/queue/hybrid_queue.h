#ifndef AMDJ_QUEUE_HYBRID_QUEUE_H_
#define AMDJ_QUEUE_HYBRID_QUEUE_H_

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/run_report.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_checker.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "geom/units.h"
#include "queue/binary_heap.h"
#include "queue/segment_file.h"
#include "storage/disk_manager.h"

namespace amdj::queue {

/// The paper's memory-parameterized *main queue* (Section 4.4): a priority
/// queue range-partitioned by priority key (a metric key — squared distance
/// under L2; partitioning by key partitions by distance since the key is
/// monotone in it). The partitions covering the smallest keys live in
/// memory; every other partition is an unsorted on-disk pile (SegmentFile).
/// When memory overflows, the farthest in-memory range *splits* off to a
/// new shortest-range segment; when memory empties, the shortest-range
/// segment is *swapped in* (re-spilling its excess if it exceeds the
/// memory capacity).
///
/// The in-memory tier is a monotone bucket queue in key space, not a single
/// comparison heap. Bucket boundaries come from `Options::boundary_fn`
/// (Eq. 3: the estimated key of the c-th closest pair), subdividing the
/// memory range into `memory_buckets` buckets the same way the segment
/// boundaries subdivide the disk range. A push is O(1): binary-search the
/// bucket (or segment) by key and append, unsorted. Only the *front*
/// bucket is ever comparator-ordered, lazily, on first pop — so the
/// tie-break comparator never sees entries the join will not reach soon,
/// and an overflow usually spills a rear bucket wholesale (no sort at
/// all). When the estimator is off and a single bucket overflows, the
/// bucket is refined adaptively: sorted once and cut at a key boundary
/// (the seed behavior), amortized O(log n) per push by the
/// `next_refine_at_` guard.
///
/// Tie-plateau fast path: consecutive pushes with an identical key — the
/// regime that dominates tie-heavy workloads — append to an *open run* in
/// O(1) with no comparator work. A run is sealed into a sorted block when
/// a different key arrives (or a pop needs the front); blocks drain by
/// bumping a cursor, so a plateau of k entries costs one O(k log k)
/// tie-break sort total instead of k heap re-orderings. A plateau too wide
/// to split (wider than the memory capacity) becomes an *exempt* block:
/// it stays resident, is excluded from refine gathering (a stuck plateau
/// must not be re-sorted on every overflow), and keys at or below it are
/// never spilled (a key plateau must never straddle the memory/disk
/// boundary).
///
/// Async spill I/O: with `Options::io_pool`, segment page writes are
/// double-buffered on the pool (see SegmentFile), and while the front
/// drains the queue *prefetches* the next shortest-range segment — a pool
/// worker reads a snapshot of its full pages into a byte buffer, ordered
/// after the writes that produced them by the SegmentFile sequence
/// handshake. The worker touches only that buffer, the thread-safe disk
/// manager/tracer, and the handshake state — never the queue structure,
/// which stays coordinator-confined; the coordinator harvests the buffer
/// (and reads the post-snapshot tail itself) at swap-in.
///
/// If `boundary_fn` is provided, segment boundaries are predetermined at
/// construction as boundary_fn(i * n) for memory capacity n, which routes
/// distant insertions straight to the right pile and minimizes split/swap
/// operations. Without it the queue degrades to adaptive refinement
/// splits.
///
/// Correctness invariant: every entry in a disk segment has key >= the
/// segment's lower_bound, and memory only accepts entries below the front
/// segment's lower_bound — hence the global minimum is always in memory
/// (after swap-in when memory runs dry). Within memory, bucket boundaries
/// are key values, so every bucket-0 entry is strictly closer than every
/// other bucket's; a pop therefore compares only the heads of bucket-0's
/// sorted sources (drain, blocks, fresh heap) under the full comparator
/// and returns the exact comparator-minimum of the whole queue — the same
/// value, in the same order, as the reference heap.
///
/// T must be trivially copyable with a public `geom::KeyVal key` member
/// (the priority — a metric key, enforced at compile time so a
/// distance-space value cannot be routed by a key-space boundary). Compare
/// orders pops and must be consistent with ascending key (equal-key
/// entries are ordered by its tie-break).
///
/// Concurrency contract: thread-confined. The queue — in particular the
/// split/swap-in path, which rewrites the bucket and segment structure
/// together — is mutated exclusively by the coordinating (query) thread;
/// the parallel executor's workers never touch it, and spill-I/O workers
/// touch only the byte-buffer handshakes described above. Confinement is
/// enforced: every mutating entry point checks the confinement owner
/// (common/thread_checker.h) and aborts on a cross-thread call instead of
/// corrupting the boundary structure.
template <typename T, typename Compare>
class HybridQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue entries are spilled to disk by memcpy");
  static_assert(std::is_same_v<decltype(T::key), geom::KeyVal>,
                "the priority member must be a metric key (geom::KeyVal): "
                "bucket/segment boundaries partition key space");

 public:
  struct Options {
    /// Bytes of memory for the in-memory tier. The paper's experiments use
    /// 64 KB - 1024 KB (Figure 13), default 512 KB.
    size_t memory_bytes = 512 * 1024;
    /// Backing store for disk segments. nullptr disables spilling: the
    /// queue stays entirely in memory regardless of memory_bytes.
    storage::DiskManager* disk = nullptr;
    /// Estimated key of the c-th closest pair (Eq. 3); see above.
    /// Key-space typed: an estimator's distance-space output must be
    /// fenced through geom::DistanceToKey before it can route entries.
    std::function<geom::KeyVal(uint64_t)> boundary_fn;
    /// Number of predetermined segments created when boundary_fn is set.
    /// Each covers ~one memory capacity of entries under an accurate
    /// Eq.-3 estimate; entries beyond the last boundary pile into the
    /// final segment, so this should comfortably exceed (expected
    /// insertions / memory capacity). Empty segments cost almost nothing.
    size_t predetermined_segments = 1024;
    /// In-memory buckets the memory key range is subdivided into when
    /// boundary_fn is set (each covers ~capacity/memory_buckets entries).
    /// More buckets make overflow spills finer-grained; 1 disables the
    /// subdivision (a single catch-all bucket, refined adaptively).
    size_t memory_buckets = 16;
    /// Optional pool for asynchronous spill I/O: double-buffered segment
    /// page writes and next-segment prefetch. nullptr (the default) keeps
    /// all I/O synchronous on the coordinator thread. Not owned. Must NOT
    /// be a pool whose workers themselves drive queries into this queue
    /// (e.g. the join service's query pool): a full pool of such workers
    /// would wait on I/O tasks that can never be scheduled.
    ThreadPool* io_pool = nullptr;
    /// Optional observability hooks (common/trace.h, common/run_report.h):
    /// split/swap-in/prefetch events and per-push depth samples. Both
    /// nullable (the default), not owned. The tracer is thread-safe and
    /// is also handed to I/O workers; the report is coordinator-only.
    Tracer* tracer = nullptr;
    RunReport* report = nullptr;
  };

  HybridQueue(const Options& options, JoinStats* stats,
              Compare cmp = Compare())
      : options_(options), stats_(stats), cmp_(cmp), fresh_(cmp) {
    buckets_.push_back(Bucket{geom::KeyVal::NegativeInfinity(), {}});
    if (options_.disk == nullptr) {
      capacity_ = std::numeric_limits<size_t>::max();
      return;
    }
    capacity_ = std::max<size_t>(16, options_.memory_bytes / sizeof(T));
    if (options_.boundary_fn) {
      geom::KeyVal prev = geom::KeyVal::Zero();
      for (size_t j = 1; j <= options_.predetermined_segments; ++j) {
        const geom::KeyVal b = options_.boundary_fn(j * capacity_);
        if (!(b > prev)) continue;  // boundaries must strictly increase
        auto seg = MakeSegment(b);
        segments_.push_back(std::move(seg));
        prev = b;
      }
      // Subdivide the memory range [0, first segment bound) the same way.
      const geom::KeyVal mem_bound = HeapUpperBound();
      prev = geom::KeyVal::Zero();
      const size_t per_bucket =
          std::max<size_t>(1, capacity_ / std::max<size_t>(
                                              1, options_.memory_buckets));
      for (size_t j = 1; j < options_.memory_buckets; ++j) {
        const geom::KeyVal b = options_.boundary_fn(j * per_bucket);
        if (!(b > prev) || !(b < mem_bound)) continue;
        buckets_.push_back(Bucket{b, {}});
        prev = b;
      }
    }
  }

  ~HybridQueue() {
    // The prefetch worker reads pages owned by a segment about to be
    // destroyed; segments themselves quiesce their writers in their own
    // destructors.
    AbandonPrefetch();
  }

  HybridQueue(const HybridQueue&) = delete;
  HybridQueue& operator=(const HybridQueue&) = delete;

  /// Inserts an entry. Counted into the stats/report only once the entry
  /// has actually landed (memory push, or segment append succeeded) — a
  /// failed spill Append must not inflate main_queue_insertions.
  Status Push(const T& item) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Push off the coordinator thread";
    if (item.key < HeapUpperBound()) {
      PushMemory(item);
      CountInsertion();
      if (mem_count_ > capacity_) AMDJ_RETURN_IF_ERROR(Overflow());
      return Status::OK();
    }
    SegmentFile* seg = RouteToSegment(item.key);
    const uint64_t before = seg->count();
    const Status appended = seg->Append(&item);
    // A record staged before a failed page flush is inside seg->count()
    // (retained for retry) even though the push failed — mirror it in the
    // running total so TotalSize() keeps matching the per-segment counts.
    total_count_ += seg->count() - before;
    AMDJ_RETURN_IF_ERROR(appended);
    CountInsertion();
    return Status::OK();
  }

  /// True when no entries remain anywhere.
  bool Empty() const { return total_count_ == 0; }

  /// Entries in memory + on disk. O(1): maintained as a running total (the
  /// per-push path must not walk the ~predetermined_segments piles).
  uint64_t TotalSize() const { return total_count_; }

  /// Removes the minimum entry into `*out`; OutOfRange when empty.
  Status Pop(T* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Pop off the coordinator thread";
    AMDJ_RETURN_IF_ERROR(SettleFront());
    if (mem_count_ == 0) return Status::OutOfRange("queue is empty");
    TakeFrontHead(FrontHead(), out);
    return Status::OK();
  }

  /// Copies the minimum entry into `*out` without removing it; OutOfRange
  /// when empty. May swap a disk segment into memory (the global minimum
  /// is always in memory afterwards, so a following Pop is in-memory).
  Status Peek(T* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::Peek off the coordinator thread";
    AMDJ_RETURN_IF_ERROR(SettleFront());
    if (mem_count_ == 0) return Status::OutOfRange("queue is empty");
    *out = *FrontHead().item;
    return Status::OK();
  }

  /// Batched pop: removes entries in priority order, appending them to
  /// `*out`, while `take(entry)` returns true, stopping after `max_n`
  /// entries or when the queue is empty. An entry rejected by `take` is
  /// left at the front of the queue (it is inspected, not removed), so the
  /// caller can alternate batches of different kinds without re-pushing —
  /// the parallel join executor uses this to drain ready object pairs and
  /// then collect a round of node pairs.
  template <typename Take>
  Status PopBatch(size_t max_n, Take&& take, std::vector<T>* out) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "HybridQueue::PopBatch off the coordinator thread";
    for (size_t n = 0; n < max_n; ++n) {
      AMDJ_RETURN_IF_ERROR(SettleFront());
      if (mem_count_ == 0) break;
      const Head head = FrontHead();
      if (!take(*head.item)) break;
      out->push_back(*head.item);
      DropFrontHead(head);
    }
    return Status::OK();
  }

  /// Number of memory->disk split events performed (a rear-bucket spill or
  /// an adaptive front refinement that spilled; one event may write
  /// several segments).
  uint64_t split_count() const { return splits_; }
  /// Number of non-empty disk->memory swap-ins performed.
  uint64_t swapin_count() const { return swapins_; }
  /// Memory capacity in entries (n in the paper's boundary formula).
  size_t heap_capacity() const { return capacity_; }
  /// Current number of disk segments (including empty predetermined ones).
  size_t segment_count() const { return segments_.size(); }
  /// Current number of entries in the in-memory tier.
  size_t heap_size() const { return mem_count_; }
  /// Current number of in-memory buckets.
  size_t bucket_count() const { return buckets_.size(); }
  /// Adaptive front-bucket refinements (gather+sort passes).
  uint64_t refine_count() const { return refines_; }
  /// Swap-ins whose prefetch had already completed (overlap won) / had to
  /// be waited for (overlap partial).
  uint64_t prefetch_hit_count() const { return prefetch_hits_; }
  uint64_t prefetch_wait_count() const { return prefetch_waits_; }

 private:
  /// A key range of the in-memory tier. Only the front bucket is ever
  /// ordered; the rest are unsorted appenders, spilled wholesale (no
  /// comparator work) on overflow.
  struct Bucket {
    geom::KeyVal lower_bound;
    std::vector<T> entries;  // unsorted
  };

  /// A sealed, comparator-sorted run of front-bucket entries, drained by
  /// cursor. Sealed tie-plateau runs and stuck (exempt) plateaus live
  /// here.
  struct Block {
    std::vector<T> entries;  // sorted by Compare
    size_t pos = 0;
    /// Exempt blocks are unsplittable plateaus: excluded from refine
    /// gathering, and the refine cut never spills keys at or below them.
    bool exempt = false;
    size_t live() const { return entries.size() - pos; }
  };

  /// Where the current front entry lives.
  enum class Src : uint8_t { kDrain, kBlock, kFresh };
  struct Head {
    Src src;
    size_t block_idx;
    const T* item;
  };

  /// Result buffer of an in-flight next-segment read. The coordinator owns
  /// it; the pool worker fills `data` and flips `done` under `mu` — the
  /// entire cross-thread surface.
  struct Prefetch {
    SegmentFile* seg = nullptr;
    size_t snap_pages = 0;      ///< Full pages covered by the snapshot.
    uint64_t snap_records = 0;  ///< snap_pages * records-per-page.
    std::vector<char> data;     ///< Written by the worker before `done`.
    Mutex mu;
    CondVar cv;
    bool done AMDJ_GUARDED_BY(mu) = false;
    Status status AMDJ_GUARDED_BY(mu);
    uint64_t page_reads AMDJ_GUARDED_BY(mu) = 0;
  };

  /// Runs of at least this size seal into their own block; smaller ones
  /// go through the fresh heap (a cursor block must be worth its scan slot
  /// in the pop loop).
  static constexpr size_t kRunSealMin = 33;
  /// At most this many non-exempt blocks; further seals fall back to the
  /// fresh heap so the per-pop head scan stays O(1)-ish.
  static constexpr size_t kMaxSealedBlocks = 8;
  /// Exempt blocks beyond this are merged into one (rare: each merge
  /// collapses them all, so reaching the cap again takes this many more
  /// stuck refinements).
  static constexpr size_t kMaxExemptBlocks = 32;

  std::unique_ptr<SegmentFile> MakeSegment(geom::KeyVal lower_bound) {
    auto seg = std::make_unique<SegmentFile>(options_.disk, sizeof(T),
                                             stats_, options_.io_pool,
                                             options_.tracer);
    seg->lower_bound = lower_bound;
    return seg;
  }

  /// Records one successful insertion (call after the entry is in). The
  /// entry is already counted by TotalSize() here, matching the pre-insert
  /// `TotalSize() + 1` peak the sequential algorithms have always reported.
  void CountInsertion() {
    if (stats_ != nullptr) {
      ++stats_->main_queue_insertions;
      stats_->main_queue_peak_size =
          std::max<uint64_t>(stats_->main_queue_peak_size, total_count_);
      stats_->main_queue_peak_buckets = std::max<uint64_t>(
          stats_->main_queue_peak_buckets, buckets_.size());
    }
    if (options_.report != nullptr) {
      options_.report->OnQueueDepth(total_count_);
    }
  }

  geom::KeyVal HeapUpperBound() const {
    return segments_.empty() ? geom::KeyVal::Infinity()
                             : segments_.front()->lower_bound;
  }

  /// Last segment with lower_bound <= key. Only called when
  /// key >= HeapUpperBound(), so a match always exists.
  SegmentFile* RouteToSegment(geom::KeyVal key) {
    size_t lo = 0;
    size_t hi = segments_.size();  // invariant: segments_[lo].lb <= key
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (segments_[mid]->lower_bound <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return segments_[lo].get();
  }

  /// Last bucket with lower_bound <= key (bucket 0 catches everything
  /// below bucket 1: its own bound is -inf).
  size_t RouteToBucket(geom::KeyVal key) const {
    size_t lo = 0;
    size_t hi = buckets_.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (buckets_[mid].lower_bound <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// O(1) memory insert: append to the routed bucket, or — in the active
  /// front bucket — extend/start a tie run.
  void PushMemory(const T& item) {
    const size_t idx = RouteToBucket(item.key);
    if (idx > 0 || !front_active_) {
      buckets_[idx].entries.push_back(item);
    } else if (!open_run_.empty() && item.key == open_run_key_) {
      open_run_.push_back(item);  // the tie-plateau fast path
    } else {
      SealOpenRun();
      open_run_.push_back(item);
      open_run_key_ = item.key;
    }
    ++mem_count_;
    ++total_count_;
  }

  /// Closes the open tie run: big runs become a cursor block (one
  /// tie-break sort for the whole plateau), small ones go through the
  /// fresh heap.
  void SealOpenRun() {
    if (open_run_.empty()) return;
    size_t sealed = 0;
    for (const Block& b : blocks_) sealed += b.exempt ? 0 : 1;
    if (open_run_.size() >= kRunSealMin && sealed < kMaxSealedBlocks) {
      std::sort(open_run_.begin(), open_run_.end(), cmp_);
      Block b;
      b.entries = std::move(open_run_);
      blocks_.push_back(std::move(b));
    } else {
      for (const T& e : open_run_) fresh_.Push(e);
    }
    open_run_.clear();
  }

  /// Sorts the front bucket's raw entries into the drain (the one lazy
  /// full-comparator sort per bucket).
  void ActivateFront() {
    if (front_active_) return;
    std::vector<T>& raw = buckets_.front().entries;
    std::sort(raw.begin(), raw.end(), cmp_);
    drain_ = std::move(raw);
    raw.clear();
    drain_pos_ = 0;
    front_active_ = true;
  }

  bool FrontExhausted() const {
    return drain_pos_ >= drain_.size() && blocks_.empty() &&
           fresh_.Empty() && open_run_.empty() &&
           buckets_.front().entries.empty();
  }

  /// Ensures the comparator-minimum of the whole queue is reachable via
  /// FrontHead(): swaps segments in while memory is empty, activates and
  /// compacts the front bucket. After this, mem_count_ == 0 means the
  /// queue is empty.
  Status SettleFront() {
    for (;;) {
      if (mem_count_ > 0) {
        ActivateFront();
        SealOpenRun();
        if (!FrontExhausted()) return Status::OK();
        // The front bucket is a drained shell but memory still holds
        // entries: they are in a rear bucket. Promote it.
        AMDJ_CHECK(buckets_.size() > 1);
        buckets_.pop_front();
        ResetFrontState();
        continue;
      }
      if (segments_.empty()) return Status::OK();  // genuinely empty
      AMDJ_RETURN_IF_ERROR(SwapIn());
    }
  }

  void ResetFrontState() {
    front_active_ = false;
    drain_.clear();
    drain_pos_ = 0;
    // blocks_/fresh_/open_run_ are empty whenever the front is replaced
    // (FrontExhausted or a refine gathered them).
  }

  /// The comparator-minimum among the front bucket's sources. Requires a
  /// settled, non-exhausted front. Ties across sources take the first
  /// scanned (drain, then blocks in seal order, then fresh) — a fixed,
  /// content-deterministic precedence.
  Head FrontHead() const {
    Head h{Src::kDrain, 0, nullptr};
    if (drain_pos_ < drain_.size()) {
      h.item = &drain_[drain_pos_];
    }
    for (size_t i = 0; i < blocks_.size(); ++i) {
      const T& cand = blocks_[i].entries[blocks_[i].pos];
      if (h.item == nullptr || cmp_(cand, *h.item)) {
        h = Head{Src::kBlock, i, &cand};
      }
    }
    if (!fresh_.Empty() &&
        (h.item == nullptr || cmp_(fresh_.Top(), *h.item))) {
      h = Head{Src::kFresh, 0, &fresh_.Top()};
    }
    AMDJ_CHECK(h.item != nullptr);
    return h;
  }

  /// Copies then removes the front head.
  void TakeFrontHead(const Head& head, T* out) {
    *out = *head.item;
    DropFrontHead(head);
  }

  /// Removes the entry FrontHead() returned.
  void DropFrontHead(const Head& head) {
    switch (head.src) {
      case Src::kDrain:
        ++drain_pos_;
        break;
      case Src::kBlock: {
        Block& b = blocks_[head.block_idx];
        ++b.pos;
        if (b.pos >= b.entries.size()) {
          // Ordered erase: block order is part of the deterministic tie
          // precedence in FrontHead().
          blocks_.erase(blocks_.begin() + head.block_idx);
        }
        break;
      }
      case Src::kFresh:
        fresh_.Pop();
        break;
    }
    --mem_count_;
    --total_count_;
  }

  /// Adjusts a sorted cut index so no kept entry ties with the spilled
  /// boundary: a key plateau must never straddle the memory/disk
  /// boundary. Tied entries that ended up in memory would pop before tied
  /// entries in the segment regardless of the comparator's tie-break,
  /// making pop order at a plateau depend on *when* splits happened (the
  /// push/pop interleaving) instead of on the comparator — observable as
  /// order divergence between otherwise identical runs. Returns
  /// items.size() when the whole range is one plateau (no key boundary
  /// can split it).
  static size_t TieSafeCut(const std::vector<T>& items, size_t cut) {
    while (cut > 0 && items[cut - 1].key == items[cut].key) --cut;
    if (cut == 0) {
      // The closest plateau is wider than the intended in-memory part:
      // keep the whole plateau and spill only what lies beyond it.
      const geom::KeyVal d0 = items[0].key;
      while (cut < items.size() && items[cut].key == d0) ++cut;
    }
    return cut;
  }

  /// Memory overflow. First spill whole rear buckets (no comparator
  /// work); if a single catch-all bucket is still over capacity, refine
  /// it adaptively.
  Status Overflow() {
    if (buckets_.size() > 1) {
      bool spilled_any = false;
      uint64_t spilled_entries = 0;
      while (buckets_.size() > 1 && mem_count_ > capacity_ / 2) {
        Bucket bucket = std::move(buckets_.back());
        buckets_.pop_back();
        if (bucket.entries.empty()) continue;  // never-used range: no pile
        auto seg = MakeSegment(bucket.lower_bound);
        const Status spilled = seg->AppendMany(
            bucket.entries.data(), bucket.entries.size());
        if (!spilled.ok()) {
          // Nothing landed durably: drop the half-written segment (its
          // staged bytes with it) and put the bucket back — the queue
          // stays consistent and the caller sees the error.
          buckets_.push_back(std::move(bucket));
          return spilled;
        }
        mem_count_ -= bucket.entries.size();
        spilled_entries += bucket.entries.size();
        segments_.insert(segments_.begin(), std::move(seg));
        spilled_any = true;
      }
      if (spilled_any) {
        ++splits_;
        if (stats_ != nullptr) ++stats_->queue_splits;
        AMDJ_TRACE(options_.tracer,
                   Instant("queue_split",
                           {{"kept", static_cast<double>(mem_count_)},
                            {"spilled",
                             static_cast<double>(spilled_entries)},
                            {"boundary_key",
                             segments_.front()->lower_bound.raw()}}));
        AMDJ_TRACE(options_.tracer,
                   Counter("queue_buckets",
                           static_cast<double>(buckets_.size())));
      }
    }
    if (mem_count_ <= capacity_ || buckets_.size() > 1) return Status::OK();
    return RefineFront();
  }

  size_t ExemptLive() const {
    size_t n = 0;
    for (const Block& b : blocks_) {
      if (b.exempt) n += b.live();
    }
    return n;
  }

  geom::KeyVal ExemptMaxKey() const {
    geom::KeyVal mx = geom::KeyVal::NegativeInfinity();
    for (const Block& b : blocks_) {
      // Blocks are key-ascending (Compare is consistent with the key), so
      // the last entry carries the block's max key.
      if (b.exempt && b.live() > 0) {
        mx = std::max(mx, b.entries.back().key);
      }
    }
    return mx;
  }

  /// Adaptive refinement of a lone over-capacity bucket: gather every
  /// live non-exempt entry, sort once with the full comparator, and spill
  /// the suffix past a key boundary as a new shortest-range segment (the
  /// seed's split, minus the stuck plateaus). When nothing is spillable —
  /// one giant plateau — the plateau becomes an exempt block and the
  /// `next_refine_at_` guard stops per-push re-sorts (the seed's
  /// quadratic wall on tie-heavy workloads).
  Status RefineFront() {
    if (mem_count_ < next_refine_at_) return Status::OK();
    ++refines_;
    if (stats_ != nullptr) ++stats_->queue_bucket_refinements;

    std::vector<T> items;
    items.reserve(mem_count_ - ExemptLive());
    std::vector<T>& raw = buckets_.front().entries;
    items.insert(items.end(), raw.begin(), raw.end());
    raw.clear();
    items.insert(items.end(), drain_.begin() + drain_pos_, drain_.end());
    drain_.clear();
    drain_pos_ = 0;
    for (Block& b : blocks_) {
      if (b.exempt) continue;
      items.insert(items.end(), b.entries.begin() + b.pos, b.entries.end());
    }
    blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                                 [](const Block& b) { return !b.exempt; }),
                  blocks_.end());
    items.insert(items.end(), open_run_.begin(), open_run_.end());
    open_run_.clear();
    {
      std::vector<T> heaped = fresh_.TakeAll();
      items.insert(items.end(), heaped.begin(), heaped.end());
    }
    std::sort(items.begin(), items.end(), cmp_);
    front_active_ = true;  // whatever stays becomes drain/blocks

    // The spill boundary must (a) leave ~capacity/2 in memory, (b) lie
    // strictly above every exempt plateau (spilling below a resident
    // plateau would break the memory invariant), and (c) fall on a key
    // change (tie safety). Advance past all three.
    const geom::KeyVal exempt_max = ExemptMaxKey();
    size_t cut = std::min(capacity_ / 2, items.size());
    while (cut < items.size() && !(items[cut].key > exempt_max)) ++cut;
    while (cut > 0 && cut < items.size() &&
           items[cut - 1].key == items[cut].key) {
      ++cut;
    }

    if (cut >= items.size()) {
      // Nothing spillable. A single wide plateau parks as an exempt
      // block; anything else just stays resident. Either way, back off:
      // re-gathering on every push is the quadratic this refactor kills.
      if (!items.empty() && items.front().key == items.back().key &&
          items.size() >= std::max<size_t>(16, capacity_ / 4)) {
        Block b;
        b.entries = std::move(items);
        b.exempt = true;
        blocks_.push_back(std::move(b));
        MaybeMergeExemptBlocks();
        AMDJ_TRACE(options_.tracer,
                   Instant("queue_plateau_parked",
                           {{"entries",
                             static_cast<double>(mem_count_)}}));
      } else {
        drain_ = std::move(items);
        drain_pos_ = 0;
      }
      next_refine_at_ =
          mem_count_ + std::max<uint64_t>(capacity_ / 2, 64);
      return Status::OK();
    }

    auto seg = MakeSegment(items[cut].key);
    const Status spilled =
        seg->AppendMany(items.data() + cut, items.size() - cut);
    if (!spilled.ok()) {
      // Keep everything resident (sorted — it becomes the drain) and
      // surface the error; the half-written segment dies here.
      drain_ = std::move(items);
      drain_pos_ = 0;
      return spilled;
    }
    ++splits_;
    if (stats_ != nullptr) ++stats_->queue_splits;
    AMDJ_TRACE(options_.tracer,
               Instant("queue_split",
                       {{"kept", static_cast<double>(cut)},
                        {"spilled",
                         static_cast<double>(items.size() - cut)},
                        {"boundary_key", items[cut].key.raw()}}));
    mem_count_ -= items.size() - cut;
    items.resize(cut);
    drain_ = std::move(items);
    drain_pos_ = 0;
    segments_.insert(segments_.begin(), std::move(seg));
    // The cut may have been pushed past capacity by an exempt plateau or
    // a wide boundary plateau; back off in that case too, or the next
    // push re-gathers immediately.
    next_refine_at_ =
        mem_count_ > capacity_
            ? mem_count_ + std::max<uint64_t>(capacity_ / 2, 64)
            : 0;
    return Status::OK();
  }

  void MaybeMergeExemptBlocks() {
    size_t exempt = 0;
    for (const Block& b : blocks_) exempt += b.exempt ? 1 : 0;
    if (exempt <= kMaxExemptBlocks) return;
    std::vector<T> merged;
    for (Block& b : blocks_) {
      if (!b.exempt) continue;
      merged.insert(merged.end(), b.entries.begin() + b.pos,
                    b.entries.end());
    }
    blocks_.erase(std::remove_if(blocks_.begin(), blocks_.end(),
                                 [](const Block& b) { return b.exempt; }),
                  blocks_.end());
    std::sort(merged.begin(), merged.end(), cmp_);
    Block b;
    b.entries = std::move(merged);
    b.exempt = true;
    blocks_.push_back(std::move(b));
  }

  /// Memory underflow: load the shortest-range segment (through the
  /// prefetch buffer when one targeted it); if it exceeds the memory
  /// capacity, re-spill its farther part in page-sized batches.
  Status SwapIn() {
    std::unique_ptr<SegmentFile> seg = std::move(segments_.front());
    segments_.erase(segments_.begin());
    if (seg->count() == 0) return Status::OK();  // empty predetermined range
    std::vector<T> items(static_cast<size_t>(seg->count()));
    const Status loaded = LoadSegment(seg.get(), &items);
    if (!loaded.ok()) {
      // Put the segment back: its records are intact (pages + write
      // buffer), so a healed disk can retry the swap-in — and TotalSize()
      // keeps matching the per-segment counts.
      segments_.insert(segments_.begin(), std::move(seg));
      return loaded;
    }
    ++swapins_;
    if (stats_ != nullptr) ++stats_->queue_swapins;
    AMDJ_TRACE(options_.tracer,
               Instant("queue_swapin",
                       {{"loaded", static_cast<double>(seg->count())},
                        {"lower_bound_key", seg->lower_bound.raw()}}));
    seg->Drop();
    seg.reset();
    bool sorted = false;
    if (items.size() > capacity_) {
      std::sort(items.begin(), items.end(), cmp_);
      sorted = true;
      const size_t keep = TieSafeCut(items, capacity_);
      if (keep < items.size()) {
        auto respill = MakeSegment(items[keep].key);
        const Status spilled = respill->AppendMany(
            items.data() + keep, items.size() - keep);
        if (!spilled.ok()) {
          // Keep the whole load resident rather than lose the tail; the
          // error still aborts the join upstream.
          InstallFront(std::move(items), sorted);
          return spilled;
        }
        items.resize(keep);
        segments_.insert(segments_.begin(), std::move(respill));
      }
    }
    InstallFront(std::move(items), sorted);
    StartPrefetch();
    return Status::OK();
  }

  /// Installs a swapped-in load as the (single) front bucket.
  void InstallFront(std::vector<T> items, bool sorted) {
    AMDJ_CHECK(mem_count_ == 0);
    buckets_.clear();
    buckets_.push_back(Bucket{geom::KeyVal::NegativeInfinity(), {}});
    ResetFrontState();
    mem_count_ = items.size();
    if (sorted) {
      drain_ = std::move(items);
      drain_pos_ = 0;
      front_active_ = true;
    } else {
      buckets_.front().entries = std::move(items);
    }
  }

  /// Reads a segment into `items` (sized to seg->count()), consuming the
  /// prefetch buffer when it targeted this segment: the snapshot part is a
  /// memcpy, and only the pages appended after the snapshot are read here.
  Status LoadSegment(SegmentFile* seg, std::vector<T>* items) {
    char* out = reinterpret_cast<char*>(items->data());
    if (prefetch_ != nullptr && prefetch_->seg == seg) {
      std::unique_ptr<Prefetch> pf = std::move(prefetch_);
      bool waited;
      uint64_t wait_nanos = 0;
      {
        MutexLock lock(&pf->mu);
        waited = !pf->done;
        if (waited && MetricsEnabled()) {
          const uint64_t wait_start = MetricsNowNanos();
          while (!pf->done) pf->cv.Wait(&pf->mu);
          wait_nanos = MetricsNowNanos() - wait_start;
        } else {
          while (!pf->done) pf->cv.Wait(&pf->mu);
        }
        if (stats_ != nullptr) stats_->queue_page_reads += pf->page_reads;
      }
      if (waited) {
        static Histogram* wait_histogram =
            MetricsRegistry::Global()->GetHistogram(
                "amdj_queue_prefetch_wait_ns", "",
                "Consumer waits for an in-flight segment prefetch to finish");
        wait_histogram->Observe(wait_nanos);
        ++prefetch_waits_;
        if (stats_ != nullptr) ++stats_->queue_prefetch_waits;
        AMDJ_TRACE(options_.tracer,
                   Instant("queue_prefetch_wait",
                           {{"pages",
                             static_cast<double>(pf->snap_pages)}}));
      } else {
        ++prefetch_hits_;
        if (stats_ != nullptr) ++stats_->queue_prefetch_hits;
        AMDJ_TRACE(options_.tracer,
                   Instant("queue_prefetch_hit",
                           {{"pages",
                             static_cast<double>(pf->snap_pages)}}));
      }
      Status status;
      {
        MutexLock lock(&pf->mu);
        status = pf->status;
      }
      AMDJ_RETURN_IF_ERROR(status);
      std::memcpy(out, pf->data.data(), pf->snap_records * sizeof(T));
      return seg->ReadTailInto(pf->snap_pages,
                               out + pf->snap_records * sizeof(T));
    }
    return seg->ReadAllInto(out);
  }

  /// Kicks off an async read of the next non-empty segment's current full
  /// pages, overlapping its I/O with the front bucket's drain. One in
  /// flight at a time; a prefetch for a not-yet-front segment stays alive
  /// until that segment's own swap-in.
  void StartPrefetch() {
    if (options_.io_pool == nullptr || prefetch_ != nullptr) return;
    SegmentFile* seg = nullptr;
    for (const auto& s : segments_) {
      if (s->count() > 0) {
        seg = s.get();
        break;
      }
    }
    if (seg == nullptr || seg->pages().empty()) return;

    auto pf = std::make_unique<Prefetch>();
    pf->seg = seg;
    pf->snap_pages = seg->pages().size();
    pf->snap_records =
        static_cast<uint64_t>(pf->snap_pages) * seg->RecordsPerPage();
    pf->data.resize(pf->snap_records * sizeof(T));
    const uint64_t write_seq = seg->write_seq();
    std::vector<storage::PageId> page_ids(
        seg->pages().begin(), seg->pages().begin() + pf->snap_pages);
    AMDJ_TRACE(options_.tracer,
               Instant("queue_prefetch_submit",
                       {{"pages", static_cast<double>(pf->snap_pages)},
                        {"lower_bound_key", seg->lower_bound.raw()}}));
    Prefetch* p = pf.get();
    storage::DiskManager* disk = options_.disk;
    Tracer* tracer = options_.tracer;
    const size_t per_page = seg->RecordsPerPage();
    options_.io_pool->Submit([p, disk, tracer, seg, write_seq, per_page,
                              page_ids = std::move(page_ids)]() {
      // Order after the writes that produced the snapshot pages. Those
      // writes were submitted before this task, so on a FIFO pool the
      // wait cannot deadlock even with a single worker.
      Status status = seg->WaitWritesThrough(write_seq);
      uint64_t reads = 0;
      if (status.ok()) {
        const TraceSpan span(
            tracer, "spill_prefetch_io",
            {{"pages", static_cast<double>(page_ids.size())}});
        status = SegmentFile::ReadPagesInto(
            disk, page_ids, sizeof(T), per_page,
            std::numeric_limits<uint64_t>::max(), p->data.data(), &reads);
      }
      const MutexLock lock(&p->mu);
      p->page_reads = reads;
      p->status = status;
      p->done = true;
      p->cv.NotifyAll();
    });
    prefetch_ = std::move(pf);
  }

  /// Waits out (and discards) any in-flight prefetch.
  void AbandonPrefetch() {
    if (prefetch_ == nullptr) return;
    {
      MutexLock lock(&prefetch_->mu);
      while (!prefetch_->done) prefetch_->cv.Wait(&prefetch_->mu);
      if (stats_ != nullptr) {
        stats_->queue_page_reads += prefetch_->page_reads;
      }
    }
    prefetch_.reset();
  }

  Options options_;
  JoinStats* stats_;
  size_t capacity_;
  Compare cmp_;

  /// The in-memory tier: key-ascending buckets; buckets_[0] catches
  /// everything below buckets_[1].lower_bound.
  std::deque<Bucket> buckets_;

  /// Front-bucket drain state (meaningful once front_active_). The drain
  /// is the bucket's lazily sorted backbone; blocks are sealed tie runs
  /// (plus exempt plateaus); fresh holds post-activation pushes too small
  /// or too scattered for a run; the open run is the O(1) plateau
  /// appender.
  bool front_active_ = false;
  std::vector<T> drain_;
  size_t drain_pos_ = 0;
  std::vector<Block> blocks_;
  BinaryHeap<T, Compare> fresh_;
  std::vector<T> open_run_;
  geom::KeyVal open_run_key_ = geom::KeyVal::Zero();

  std::vector<std::unique_ptr<SegmentFile>> segments_;  // by lower_bound asc
  std::unique_ptr<Prefetch> prefetch_;

  uint64_t mem_count_ = 0;    ///< Entries in the memory tier.
  uint64_t total_count_ = 0;  ///< Memory + segments (incl. phantom staged).
  /// Refine back-off: no re-gather until mem_count_ reaches this (stuck
  /// plateaus would otherwise re-sort the front on every push).
  uint64_t next_refine_at_ = 0;

  uint64_t splits_ = 0;
  uint64_t swapins_ = 0;
  uint64_t refines_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_waits_ = 0;

  /// Confinement owner: bound to the first mutating caller (see the class
  /// comment's concurrency contract).
  ThreadChecker owner_;
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_HYBRID_QUEUE_H_

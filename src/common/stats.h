#ifndef AMDJ_COMMON_STATS_H_
#define AMDJ_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace amdj {

/// How a JoinStats field combines across runs (Add) and subtracts into
/// per-phase deltas (common/run_report.h).
enum class StatFieldKind : uint8_t {
  kAdd,  ///< Additive counter or time: Add sums, deltas subtract.
  kMax,  ///< High-water mark: Add takes the max; deltas report the end value.
};

/// Counters collected while executing a distance join. These are the three
/// metrics the paper's evaluation reports (Section 5.1) plus a few extras
/// used by the ablation benches.
///
/// A JoinStats instance is owned by the caller and passed (by pointer) into
/// the storage, queue and core layers, which increment the counters they are
/// responsible for:
///   - real/axis distance computations: core (plane sweeper, HS expansion)
///   - queue insertions:                queue (main queue)
///   - node accesses / page I/O:        storage (buffer pool, disk manager)
///
/// When adding a field, extend ForEachJoinStatsField below and bump the
/// sizeof check in stats.cc — Add/Reset/ToString/ToJson and the run-report
/// phase deltas are all derived from that one visitor, so a field listed
/// there cannot be silently dropped anywhere.
struct JoinStats {
  // --- computational cost (Figure 10(a), 11, 12(a), 14(a)) ---
  /// Number of real (Euclidean MBR) distance computations.
  uint64_t real_distance_computations = 0;
  /// Number of axis (1-d projected) distance computations done by sweeps.
  uint64_t axis_distance_computations = 0;

  // --- queue cost (Figure 10(b), 12(b), 14(b)) ---
  /// Insertions into the main queue.
  uint64_t main_queue_insertions = 0;
  /// Insertions into the distance queue.
  uint64_t distance_queue_insertions = 0;
  /// Insertions into the compensation queue (AM-KDJ / AM-IDJ only).
  uint64_t compensation_queue_insertions = 0;
  /// Peak number of live entries in the main queue.
  uint64_t main_queue_peak_size = 0;
  /// Main-queue split events (in-memory tier overflow -> disk; one event
  /// may spill several buckets into several segments).
  uint64_t queue_splits = 0;
  /// Main-queue segment swap-ins (disk segment -> in-memory tier).
  uint64_t queue_swapins = 0;
  /// Adaptive front-bucket refinements (gather+sort passes when the
  /// estimator-derived bucket boundaries are off).
  uint64_t queue_bucket_refinements = 0;
  /// Swap-ins whose async prefetch had already completed (I/O fully
  /// overlapped with the front drain) vs. had to be waited for.
  uint64_t queue_prefetch_hits = 0;
  uint64_t queue_prefetch_waits = 0;
  /// Peak number of in-memory key-space buckets.
  uint64_t main_queue_peak_buckets = 0;

  // --- I/O cost (Table 2, Figure 10(c), 12(c), 13, 15) ---
  /// R-tree node fetches that were served by the buffer pool.
  uint64_t node_buffer_hits = 0;
  /// R-tree node fetches that went to disk (buffer misses). The paper's
  /// Table 2 reports this as "nodes fetched from disk".
  uint64_t node_disk_reads = 0;
  /// Logical node accesses (hits + misses). The paper's Table 2 reports this
  /// in parentheses as accesses without any buffer.
  uint64_t node_accesses = 0;
  /// Queue-related page reads/writes (hybrid queue disk segments, external
  /// sort runs).
  uint64_t queue_page_reads = 0;
  uint64_t queue_page_writes = 0;

  // --- results ---
  /// Number of object pairs produced.
  uint64_t pairs_produced = 0;
  /// Number of node-pair expansions performed.
  uint64_t node_expansions = 0;

  // --- parallel executor (JoinOptions::parallelism > 1 only) ---
  /// Batched expansion rounds executed.
  uint64_t parallel_rounds = 0;
  /// Node-pair tasks handed to the batch expander across all rounds.
  uint64_t parallel_tasks = 0;
  /// Rounds aborted by the tie guard (remaining tasks re-queued).
  uint64_t parallel_tie_aborts = 0;

  // --- sharded execution (core/shard_executor.h only) ---
  /// Shard pairs enumerated by the scheduler (non-empty x non-empty).
  uint64_t shard_pairs_considered = 0;
  /// Shard pairs pruned from bounds alone (MinDist beyond the count-based
  /// MaxDist prefix bound) before any tree I/O.
  uint64_t shard_pairs_pruned_bounds = 0;
  /// Shard pairs pruned at dispatch time by the tightened global cutoff
  /// (results of earlier pairs shrank it below the pair's MinDist).
  uint64_t shard_pairs_pruned_cutoff = 0;
  /// Shard pairs that actually executed a per-pair join.
  uint64_t shard_pairs_executed = 0;

  // --- cross-query shared work (service/shared_work.h) ---
  /// 1 when this response was produced by the JoinService shared-work
  /// layer — piggybacked on an identical in-flight execution or answered
  /// from the semantic result cache — instead of its own tree traversal.
  /// The leader execution of a deduped group reports 0: exactly one
  /// response per group carries the real traversal counters.
  uint64_t shared_hit = 0;

  // --- time ---
  /// Measured wall-clock CPU time, seconds.
  double cpu_seconds = 0.0;
  /// Simulated I/O time, seconds (see core::CostModel).
  double simulated_io_seconds = 0.0;

  /// Total "response time" in the paper's sense: CPU + simulated I/O.
  double response_seconds() const { return cpu_seconds + simulated_io_seconds; }

  /// Total distance computations (real + axis), as Figure 11 plots.
  uint64_t total_distance_computations() const {
    return real_distance_computations + axis_distance_computations;
  }

  /// Adds all counters of `other` into this (times included).
  void Add(const JoinStats& other);

  /// Resets every counter to zero.
  void Reset();

  /// Multi-line human readable dump.
  std::string ToString() const;

  /// Single-line JSON object with every field (and the two derived totals,
  /// keyed "response_seconds" / "total_distance_computations").
  std::string ToJson() const;
};

/// Invokes fn(name, a.field, b.field, kind) for every JoinStats field, in
/// declaration order, zipping two stats objects (Add and phase deltas walk
/// a mutable destination alongside a const source). This list is the single
/// source of truth for Add/ToString/ToJson, the bench JSON, and run-report
/// phase deltas; the sizeof check in stats.cc guarantees it stays complete.
template <typename StatsA, typename StatsB, typename Fn>
void ForEachJoinStatsFieldPair(StatsA&& a, StatsB&& b, Fn&& fn) {
  fn("real_distance_computations", a.real_distance_computations,
     b.real_distance_computations, StatFieldKind::kAdd);
  fn("axis_distance_computations", a.axis_distance_computations,
     b.axis_distance_computations, StatFieldKind::kAdd);
  fn("main_queue_insertions", a.main_queue_insertions,
     b.main_queue_insertions, StatFieldKind::kAdd);
  fn("distance_queue_insertions", a.distance_queue_insertions,
     b.distance_queue_insertions, StatFieldKind::kAdd);
  fn("compensation_queue_insertions", a.compensation_queue_insertions,
     b.compensation_queue_insertions, StatFieldKind::kAdd);
  fn("main_queue_peak_size", a.main_queue_peak_size, b.main_queue_peak_size,
     StatFieldKind::kMax);
  fn("queue_splits", a.queue_splits, b.queue_splits, StatFieldKind::kAdd);
  fn("queue_swapins", a.queue_swapins, b.queue_swapins, StatFieldKind::kAdd);
  fn("queue_bucket_refinements", a.queue_bucket_refinements,
     b.queue_bucket_refinements, StatFieldKind::kAdd);
  fn("queue_prefetch_hits", a.queue_prefetch_hits, b.queue_prefetch_hits,
     StatFieldKind::kAdd);
  fn("queue_prefetch_waits", a.queue_prefetch_waits, b.queue_prefetch_waits,
     StatFieldKind::kAdd);
  fn("main_queue_peak_buckets", a.main_queue_peak_buckets,
     b.main_queue_peak_buckets, StatFieldKind::kMax);
  fn("node_buffer_hits", a.node_buffer_hits, b.node_buffer_hits,
     StatFieldKind::kAdd);
  fn("node_disk_reads", a.node_disk_reads, b.node_disk_reads,
     StatFieldKind::kAdd);
  fn("node_accesses", a.node_accesses, b.node_accesses, StatFieldKind::kAdd);
  fn("queue_page_reads", a.queue_page_reads, b.queue_page_reads,
     StatFieldKind::kAdd);
  fn("queue_page_writes", a.queue_page_writes, b.queue_page_writes,
     StatFieldKind::kAdd);
  fn("pairs_produced", a.pairs_produced, b.pairs_produced,
     StatFieldKind::kAdd);
  fn("node_expansions", a.node_expansions, b.node_expansions,
     StatFieldKind::kAdd);
  fn("parallel_rounds", a.parallel_rounds, b.parallel_rounds,
     StatFieldKind::kAdd);
  fn("parallel_tasks", a.parallel_tasks, b.parallel_tasks,
     StatFieldKind::kAdd);
  fn("parallel_tie_aborts", a.parallel_tie_aborts, b.parallel_tie_aborts,
     StatFieldKind::kAdd);
  fn("shard_pairs_considered", a.shard_pairs_considered,
     b.shard_pairs_considered, StatFieldKind::kAdd);
  fn("shard_pairs_pruned_bounds", a.shard_pairs_pruned_bounds,
     b.shard_pairs_pruned_bounds, StatFieldKind::kAdd);
  fn("shard_pairs_pruned_cutoff", a.shard_pairs_pruned_cutoff,
     b.shard_pairs_pruned_cutoff, StatFieldKind::kAdd);
  fn("shard_pairs_executed", a.shard_pairs_executed, b.shard_pairs_executed,
     StatFieldKind::kAdd);
  fn("shared_hit", a.shared_hit, b.shared_hit, StatFieldKind::kAdd);
  fn("cpu_seconds", a.cpu_seconds, b.cpu_seconds, StatFieldKind::kAdd);
  fn("simulated_io_seconds", a.simulated_io_seconds, b.simulated_io_seconds,
     StatFieldKind::kAdd);
}

/// Single-object view of the field list: fn(name, field_reference, kind).
template <typename StatsT, typename Fn>
void ForEachJoinStatsField(StatsT&& s, Fn&& fn) {
  ForEachJoinStatsFieldPair(
      s, s, [&fn](const char* name, auto& field, auto&, StatFieldKind kind) {
        fn(name, field, kind);
      });
}

/// Per-field difference `end - begin` (kMax fields report the end value —
/// a cumulative high-water mark has no meaningful per-phase difference).
JoinStats SubtractJoinStats(const JoinStats& end, const JoinStats& begin);

}  // namespace amdj

#endif  // AMDJ_COMMON_STATS_H_

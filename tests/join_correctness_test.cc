#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using test::BruteForceDistances;
using test::ExpectMatchesBruteForce;
using test::ExpectNoDuplicates;
using test::JoinFixture;
using test::MakeFixture;

workload::Dataset MakeData(const std::string& kind, uint64_t n,
                           uint64_t seed) {
  const geom::Rect universe(0, 0, 10000, 10000);
  if (kind == "uniform") return workload::UniformPoints(n, seed, universe);
  if (kind == "rects") {
    return workload::UniformRects(n, 50.0, seed, universe);
  }
  if (kind == "clusters") {
    return workload::GaussianClusters(n, 8, 0.03, seed, universe);
  }
  if (kind == "zipf") return workload::ZipfSkewedPoints(n, 0.8, seed, universe);
  ADD_FAILURE() << "unknown kind " << kind;
  return {};
}

// ---------------------------------------------------------------------------
// Parameterized correctness: every KDJ algorithm x data distribution x k
// must return exactly the k smallest distances (verified against brute
// force), sorted, without duplicate pairs.

using KdjCase = std::tuple<KdjAlgorithm, std::string, uint64_t>;

class KdjCorrectnessTest : public ::testing::TestWithParam<KdjCase> {};

TEST_P(KdjCorrectnessTest, MatchesBruteForce) {
  const auto [algorithm, kind, k] = GetParam();
  const auto r_data = MakeData(kind, 300, 1001);
  const auto s_data = MakeData(kind, 200, 2002);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/8);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);

  JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 16 * 1024;  // force spilling paths too
  JoinStats stats;
  auto result = RunKDistanceJoin(*f.r, *f.s, k, algorithm, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesBruteForce(*result, brute, k, f.r_objects, f.s_objects);
  ExpectNoDuplicates(*result);
  EXPECT_EQ(stats.pairs_produced, result->size());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndData, KdjCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj,
                          KdjAlgorithm::kAmKdj, KdjAlgorithm::kSjSort),
        ::testing::Values("uniform", "rects", "clusters", "zipf"),
        ::testing::Values(uint64_t{1}, uint64_t{10}, uint64_t{500},
                          uint64_t{5000})),
    [](const ::testing::TestParamInfo<KdjCase>& info) {
      std::string name = ToString(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_" + std::get<1>(info.param) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Edge cases.

TEST(KdjEdgeTest, EmptyInputsYieldNoPairs) {
  const auto empty = workload::UniformPoints(0, 1);
  const auto some = workload::UniformPoints(10, 2);
  JoinFixture f = MakeFixture(empty, some);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj,
        KdjAlgorithm::kSjSort}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, 5, algorithm, JoinOptions{}, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty()) << ToString(algorithm);
  }
}

TEST(KdjEdgeTest, KZeroYieldsNoPairs) {
  const auto data = workload::UniformPoints(20, 3);
  JoinFixture f = MakeFixture(data, data);
  auto result = RunKDistanceJoin(*f.r, *f.s, 0, KdjAlgorithm::kBKdj,
                                 JoinOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(KdjEdgeTest, KLargerThanProductReturnsEverything) {
  const auto r_data = workload::UniformPoints(12, 4);
  const auto s_data = workload::UniformPoints(9, 5);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/4);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj,
        KdjAlgorithm::kSjSort}) {
    auto result = RunKDistanceJoin(*f.r, *f.s, 1000, algorithm,
                                   JoinOptions{}, nullptr);
    ASSERT_TRUE(result.ok()) << ToString(algorithm);
    ExpectMatchesBruteForce(*result, brute, 1000, f.r_objects, f.s_objects)
        ;
    EXPECT_EQ(result->size(), 12u * 9u);
  }
}

TEST(KdjEdgeTest, SingleObjectEachSide) {
  workload::Dataset r_data, s_data;
  r_data.objects = {geom::Rect(0, 0, 1, 1)};
  s_data.objects = {geom::Rect(4, 4, 5, 5)};
  JoinFixture f = MakeFixture(r_data, s_data);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, 1, algorithm, JoinOptions{}, nullptr);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u);
    EXPECT_NEAR((*result)[0].distance, std::sqrt(18.0), 1e-12);
  }
}

TEST(KdjEdgeTest, IdenticalDatasetsContainZeroDistancePairs) {
  const auto data = workload::UniformPoints(50, 6);
  JoinFixture f = MakeFixture(data, data, /*fanout=*/6);
  // Self-join: the 50 identical pairs have distance 0.
  auto result = RunKDistanceJoin(*f.r, *f.s, 50, KdjAlgorithm::kAmKdj,
                                 JoinOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 50u);
  for (const auto& p : *result) EXPECT_EQ(p.distance, 0.0);
}

TEST(KdjEdgeTest, AllObjectsAtSamePoint) {
  workload::Dataset data;
  for (int i = 0; i < 40; ++i) {
    data.objects.push_back(geom::Rect(7, 7, 7, 7));
  }
  JoinFixture f = MakeFixture(data, data, /*fanout=*/5);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result = RunKDistanceJoin(*f.r, *f.s, 100, algorithm, JoinOptions{},
                                   nullptr);
    ASSERT_TRUE(result.ok()) << ToString(algorithm);
    EXPECT_EQ(result->size(), 100u);
    for (const auto& p : *result) EXPECT_EQ(p.distance, 0.0);
  }
}

TEST(KdjEdgeTest, DisjointDatasetsWithGap) {
  const geom::Rect left(0, 0, 100, 100);
  const geom::Rect right(5000, 5000, 5100, 5100);
  const auto r_data = workload::UniformPoints(60, 7, left);
  const auto s_data = workload::UniformPoints(40, 8, right);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/8);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj,
        KdjAlgorithm::kSjSort}) {
    auto result = RunKDistanceJoin(*f.r, *f.s, 25, algorithm, JoinOptions{},
                                   nullptr);
    ASSERT_TRUE(result.ok()) << ToString(algorithm);
    ExpectMatchesBruteForce(*result, brute, 25, f.r_objects, f.s_objects);
  }
}

TEST(KdjEdgeTest, AsymmetricTreeHeights) {
  // A large R against a tiny S forces node/object mixed pairs.
  const auto r_data = workload::UniformPoints(2000, 9,
                                              geom::Rect(0, 0, 1000, 1000));
  workload::Dataset s_data;
  s_data.objects = {geom::Rect(500, 500, 501, 501),
                    geom::Rect(100, 900, 101, 901)};
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/6);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result = RunKDistanceJoin(*f.r, *f.s, 100, algorithm, JoinOptions{},
                                   nullptr);
    ASSERT_TRUE(result.ok()) << ToString(algorithm);
    ExpectMatchesBruteForce(*result, brute, 100, f.r_objects, f.s_objects);
  }
}

TEST(KdjEdgeTest, InsertBuiltTreesJoinIdentically) {
  const auto r_data = MakeData("clusters", 250, 11);
  const auto s_data = MakeData("uniform", 150, 12);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/8,
                              /*buffer_pages=*/64, /*insert_build=*/true);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  auto result = RunKDistanceJoin(*f.r, *f.s, 200, KdjAlgorithm::kAmKdj,
                                 JoinOptions{}, nullptr);
  ASSERT_TRUE(result.ok());
  ExpectMatchesBruteForce(*result, brute, 200, f.r_objects, f.s_objects);
}

// ---------------------------------------------------------------------------
// Sweep-strategy equivalence: optimization changes cost, never results.

class SweepStrategyTest : public ::testing::TestWithParam<SweepStrategy> {};

TEST_P(SweepStrategyTest, StrategyDoesNotChangeResults) {
  const auto r_data = MakeData("clusters", 300, 21);
  const auto s_data = MakeData("rects", 200, 22);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/8);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.sweep = GetParam();
  for (const auto algorithm : {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, 400, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok());
    ExpectMatchesBruteForce(*result, brute, 400, f.r_objects, f.s_objects);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SweepStrategyTest,
                         ::testing::Values(SweepStrategy::kOptimized,
                                           SweepStrategy::kFixedXForward,
                                           SweepStrategy::kAxisOnly,
                                           SweepStrategy::kDirectionOnly));

// ---------------------------------------------------------------------------
// Distance-queue policy ablation must not change results either.

TEST(DistanceQueuePolicyTest, AllPairsPolicyIsCorrect) {
  const auto r_data = MakeData("uniform", 300, 31);
  const auto s_data = MakeData("uniform", 200, 32);
  JoinFixture f = MakeFixture(r_data, s_data, /*fanout=*/8);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.distance_queue_policy = DistanceQueuePolicy::kAllPairs;
  for (const auto algorithm :
       {KdjAlgorithm::kHsKdj, KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
    auto result =
        RunKDistanceJoin(*f.r, *f.s, 333, algorithm, options, nullptr);
    ASSERT_TRUE(result.ok()) << ToString(algorithm);
    ExpectMatchesBruteForce(*result, brute, 333, f.r_objects, f.s_objects);
  }
}

}  // namespace
}  // namespace amdj::core

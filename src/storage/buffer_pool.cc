#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace amdj::storage {

namespace {

/// Process-wide buffer-pool metrics (all pools feed one series each; the
/// per-query split already lives in JoinStats). Resolved once, lazily.
struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
};

PoolMetrics& GlobalPoolMetrics() {
  static PoolMetrics metrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Global();
    return PoolMetrics{
        registry->GetCounter("amdj_buffer_pool_hits_total", "",
                             "Page fetches served from memory"),
        registry->GetCounter("amdj_buffer_pool_misses_total", "",
                             "Page fetches that went to disk"),
        registry->GetCounter("amdj_buffer_pool_evictions_total", "",
                             "Resident pages evicted to make room"),
    };
  }();
  return metrics;
}

}  // namespace

// ---------------------------------------------------------------------------
// PageGuard

PageGuard::PageGuard(BufferPool* pool, PageId page_id, char* data)
    : pool_(pool), page_id_(page_id), data_(data) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      page_id_(other.page_id_),
      data_(other.data_),
      dirty_(other.dirty_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
  other.page_id_ = kInvalidPageId;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.page_id_ = kInvalidPageId;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->UnpinPage(page_id_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

// ---------------------------------------------------------------------------
// BufferPool

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  const Status s = FlushAll();
  if (!s.ok()) {
    AMDJ_LOG(kWarn) << "BufferPool flush on destruction failed: "
                    << s.ToString();
  }
}

void BufferPool::TouchLru(size_t frame_idx) {
  auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame_idx);
  lru_pos_[frame_idx] = lru_.begin();
}

int BufferPool::FindVictim(Status* status) {
  *status = Status::OK();
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return static_cast<int>(idx);
  }
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const size_t idx = *it;
    Frame& f = frames_[idx];
    if (f.pin_count > 0) continue;
    if (f.dirty) {
      const Status s = disk_->WritePage(f.page_id, f.data.get());
      if (!s.ok()) {
        *status = s;
        return -1;
      }
      f.dirty = false;
    }
    table_.erase(f.page_id);
    lru_.erase(lru_pos_[idx]);
    lru_pos_.erase(idx);
    f.page_id = kInvalidPageId;
    GlobalPoolMetrics().evictions->Increment();
    return static_cast<int>(idx);
  }
  *status = Status::ResourceExhausted("all buffer frames are pinned");
  return -1;
}

StatusOr<PageGuard> BufferPool::FetchPage(PageId page_id) {
  // An active scope attributes this access to the calling thread's query;
  // otherwise the pool-wide sink applies. The per-query JoinStats is
  // incremented under the pool mutex, like the pool-wide one — threads of
  // *different* queries write different JoinStats blocks, and threads of
  // one query (the intra-query parallel executor) serialize on this lock.
  QueryAttribution* query = QueryAttributionScope::Current();
  const MutexLock lock(&mutex_);
  JoinStats* stats = query != nullptr ? query->stats : stats_;
  Tracer* tracer = query != nullptr ? query->tracer : tracer_;
  if (stats != nullptr) ++stats->node_accesses;
  auto it = table_.find(page_id);
  const bool hit = it != table_.end();
  if (tracer != nullptr) {
    // The hit-ratio window travels with the attribution source, so
    // concurrent queries sample their own ratios instead of a blend.
    uint64_t& window_accesses =
        query != nullptr ? query->window_accesses : window_accesses_;
    uint64_t& window_hits =
        query != nullptr ? query->window_hits : window_hits_;
    ++window_accesses;
    if (hit) ++window_hits;
    if (window_accesses >= kTraceWindow) {
      tracer->Counter("buffer_hit_ratio",
                      static_cast<double>(window_hits) /
                          static_cast<double>(window_accesses));
      window_accesses = 0;
      window_hits = 0;
    }
  }
  if (hit) {
    ++hits_;
    GlobalPoolMetrics().hits->Increment();
    if (stats != nullptr) ++stats->node_buffer_hits;
    Frame& f = frames_[it->second];
    ++f.pin_count;
    TouchLru(it->second);
    return PageGuard(this, page_id, f.data.get());
  }
  ++misses_;
  GlobalPoolMetrics().misses->Increment();
  if (stats != nullptr) ++stats->node_disk_reads;
  Status status;
  const int victim = FindVictim(&status);
  if (victim < 0) return status;
  Frame& f = frames_[static_cast<size_t>(victim)];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  const Status read = disk_->ReadPage(page_id, f.data.get());
  if (!read.ok()) {
    free_frames_.push_back(static_cast<size_t>(victim));
    return read;
  }
  f.page_id = page_id;
  f.pin_count = 1;
  f.dirty = false;
  table_[page_id] = static_cast<size_t>(victim);
  TouchLru(static_cast<size_t>(victim));
  return PageGuard(this, page_id, f.data.get());
}

StatusOr<PageGuard> BufferPool::NewPage(PageId* page_id) {
  const MutexLock lock(&mutex_);
  Status status;
  const int victim = FindVictim(&status);
  if (victim < 0) return status;
  const PageId id = disk_->AllocatePage();
  Frame& f = frames_[static_cast<size_t>(victim)];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  table_[id] = static_cast<size_t>(victim);
  TouchLru(static_cast<size_t>(victim));
  *page_id = id;
  return PageGuard(this, id, f.data.get());
}

void BufferPool::UnpinPage(PageId page_id, bool dirty) {
  const MutexLock lock(&mutex_);
  auto it = table_.find(page_id);
  if (it == table_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pin_count > 0) --f.pin_count;
  if (dirty) f.dirty = true;
}

Status BufferPool::Discard(PageId page_id) {
  const MutexLock lock(&mutex_);
  auto it = table_.find(page_id);
  if (it == table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.pin_count > 0) {
    return Status::FailedPrecondition("discard of pinned page " +
                                      std::to_string(page_id));
  }
  const size_t idx = it->second;
  table_.erase(it);
  auto pos = lru_pos_.find(idx);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  f.page_id = kInvalidPageId;
  f.dirty = false;
  free_frames_.push_back(idx);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  const MutexLock lock(&mutex_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      AMDJ_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.get()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  const MutexLock lock(&mutex_);
  for (size_t idx = 0; idx < frames_.size(); ++idx) {
    Frame& f = frames_[idx];
    if (f.page_id == kInvalidPageId) continue;
    if (f.pin_count > 0) {
      return Status::FailedPrecondition("page " + std::to_string(f.page_id) +
                                        " still pinned");
    }
    if (f.dirty) {
      AMDJ_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.get()));
    }
    table_.erase(f.page_id);
    auto pos = lru_pos_.find(idx);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    f.page_id = kInvalidPageId;
    f.dirty = false;
    free_frames_.push_back(idx);
  }
  return Status::OK();
}

}  // namespace amdj::storage

#ifndef AMDJ_COMMON_STATUS_H_
#define AMDJ_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace amdj {

/// Error categories used across the library. The public API never throws;
/// fallible operations return a Status (or StatusOr<T> when they produce a
/// value).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kResourceExhausted = 6,
  kFailedPrecondition = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message string). Modeled on
/// absl::Status / rocksdb::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Accessing value() when !ok() aborts, so
/// callers must check ok() (or status()) first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from Status so `return Status::IOError(...)` works. The status
  /// must not be OK (an OK StatusOr must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  /// Implicit from T so `return value;` works.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace amdj

/// Propagates a non-OK Status from an expression, like absl's RETURN_IF_ERROR.
#define AMDJ_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::amdj::Status _amdj_status = (expr);         \
    if (!_amdj_status.ok()) return _amdj_status;  \
  } while (0)

#endif  // AMDJ_COMMON_STATUS_H_

#ifndef AMDJ_SERVICE_JOIN_SERVICE_H_
#define AMDJ_SERVICE_JOIN_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/distance_join.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "core/partition.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace amdj::service {

class SharedWorkRegistry;  // service/shared_work.h
struct SharedWorkKeys;     // service/shared_work.h

/// One distance-join request against the service's tree pair: either a
/// k-distance join (the k closest pairs) or an incremental join streamed
/// to a caller-chosen cardinality.
struct JoinRequest {
  enum class Kind : uint8_t {
    kKdj = 0,  ///< One-shot k-distance join.
    kIdj = 1,  ///< Incremental join, streamed until `k` pairs (or done).
  };

  Kind kind = Kind::kKdj;
  core::KdjAlgorithm kdj_algorithm = core::KdjAlgorithm::kAmKdj;
  core::IdjAlgorithm idj_algorithm = core::IdjAlgorithm::kAmIdj;
  /// KDJ: result cardinality. IDJ: number of pairs to stream.
  uint64_t k = 10;
  /// Per-request knobs (metric, sweep, tie-break, tracer/report, ...).
  /// The service overrides queue_disk (a session-scoped spill disk) and
  /// clamps queue_memory_bytes to the admission budget; see
  /// JoinService::EffectiveOptions. An attached tracer/report must not be
  /// shared between concurrently submitted requests.
  core::JoinOptions options;
};

/// Outcome of one request: the result pairs plus the query's *own*
/// JoinStats — node accesses, buffer hits, queue work, CPU seconds — with
/// exact attribution even while other queries share the buffer pool.
struct JoinResponse {
  Status status = Status::OK();
  std::vector<core::ResultPair> results;
  JoinStats stats;
  /// Time the request spent queued before a worker picked it up.
  double wait_seconds = 0.0;
  /// Execution wall time (excludes wait_seconds); wait + exec is the
  /// end-to-end service latency.
  double exec_seconds = 0.0;
};

/// Inter-query concurrent execution layer: accepts KDJ/IDJ requests
/// against one shared (read-only) pair of R-trees and runs them on a
/// fixed-size ThreadPool.
///
/// Admission control: at most `max_inflight` queries execute at once
/// (excess requests queue FIFO), and each admitted query's hybrid-queue
/// memory is clamped to queue_memory_budget_bytes / max_inflight — so N
/// concurrent hybrid queues cannot blow the configured memory cap no
/// matter what the requests ask for.
///
/// Session scoping: every executing query gets its own spill disk for
/// queue segments / sort runs (nothing shared, nothing leaked across
/// queries) and its own JoinStats. Buffer-pool accesses are attributed
/// per-query through storage::QueryAttributionScope, so the response's
/// counters are exact under concurrency and per-query sums reconcile with
/// the pool's global hit/miss totals.
///
/// Thread-safety: Submit may be called from any thread. The trees and
/// their buffer pool must outlive the service and must not be mutated
/// while it runs (the R-tree is not thread-safe for writes).
class JoinService {
 public:
  struct Options {
    /// Maximum concurrently executing queries (>= 1).
    uint32_t max_inflight = 4;
    /// Total in-memory budget shared by the in-flight queries' main
    /// queues; each query gets budget / max_inflight (floored at
    /// kMinQueueMemoryBytes).
    size_t queue_memory_budget_bytes = 4 * 1024 * 1024;
    /// Give each query a private in-memory spill disk for queue segments.
    /// When false, queues never spill (JoinOptions::queue_disk = nullptr)
    /// and the memory clamp is only nominal — spilling is what makes the
    /// budget enforceable.
    bool session_spill_disk = true;
    /// Dedicated threads for asynchronous main-queue spill I/O, shared by
    /// all in-flight queries. 0 (the default) keeps spill I/O synchronous
    /// on the query worker. Deliberately a separate pool from the query
    /// workers: a spill write queued behind queries that are themselves
    /// waiting on spill I/O would deadlock. When on, the per-query memory
    /// clamp is halved — async spilling holds up to
    /// SegmentFile::kMaxInflightWrites pages per segment plus one
    /// prefetched segment (up to a full in-memory tier) outside the
    /// queue's accounted tier, so a query's resident footprint can
    /// transiently double.
    uint32_t spill_io_threads = 0;
    /// Shard count for partition-parallel KDJ execution. 1 (the default)
    /// keeps the classic single-pair path. Values > 1 make the service
    /// split both data sets into `shards` STR tiles at construction (one
    /// bulk-loaded tree per tile, in a service-owned in-memory pool) and
    /// route every kBKdj/kAmKdj KDJ request through
    /// core::RunShardedKDistanceJoin. Other algorithms and IDJ cursors
    /// fall back to the unsharded trees.
    uint32_t shards = 1;
    /// Worker threads per sharded execution (the shard-pair fan-out of one
    /// query — independent of max_inflight, which fans out across
    /// queries). Each admitted query's queue-memory clamp is further
    /// divided by this, since up to shard_threads per-pair queues live
    /// concurrently.
    uint32_t shard_threads = 4;
    /// Buffer-pool capacity (pages) for the service-owned shard trees.
    size_t shard_pool_pages = 4096;
    /// Admission cap on requests queued but not yet started; 0 (the
    /// default) is unlimited. A Submit over the cap is rejected *without*
    /// blocking: its future is immediately ready with
    /// Status::ResourceExhausted — the caller's backpressure signal.
    uint32_t max_queued = 0;
    /// End-to-end (queue wait + execution) latency threshold past which a
    /// query is logged at warn level together with its full RunReport
    /// JSON; the service attaches its own report when the request did not
    /// bring one. 0 (the default) disables the slow-query log.
    double slow_query_seconds = 0.0;
    /// In-flight dedupe (service/shared_work.h): semantically identical
    /// concurrent submissions piggyback on one execution, each future
    /// getting its own response with a stats.shared_hit marker. Off by
    /// default — duplicates then execute independently, which admission
    /// tests and benches that measure raw execution rely on. Requests
    /// carrying a tracer/report or external-cutoff plumbing are never
    /// deduped regardless.
    bool dedupe_inflight = false;
    /// Capacity (entries) of the semantic result cache: completed KDJ runs
    /// are recorded per (algorithm, options-key) and a later k' <= k is
    /// answered byte-identically from the cached prefix without touching
    /// the trees; cached exact Dmax values also seed the eDmax estimator
    /// of later runs (JoinOptions::edmax_seed). 0 (the default) disables
    /// both the cache and the learned seed.
    size_t shared_cache_entries = 0;
    /// Worker thread name prefix.
    std::string name_prefix = "amdj-svc";
  };

  /// Point-in-time admission counters, all read under one lock so the
  /// accounting identity `accepted == completed + inflight + queued` holds
  /// exactly at every snapshot (each state transition updates its two
  /// sides in one critical section).
  struct AdmissionSnapshot {
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint32_t inflight = 0;
    uint32_t queued = 0;
    uint32_t peak_inflight = 0;
  };

  /// Floor for the per-query queue memory clamp.
  static constexpr size_t kMinQueueMemoryBytes = 16 * 1024;

  /// `r`, `s` (and their buffer pool) must outlive the service.
  JoinService(const rtree::RTree& r, const rtree::RTree& s,
              const Options& options);

  /// Drains: queued and in-flight requests finish before destruction
  /// returns (their futures all become ready).
  ~JoinService();

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Enqueues a request; the future carries its response (never an
  /// exception — errors travel in JoinResponse::status).
  std::future<JoinResponse> Submit(JoinRequest request);

  /// Synchronous convenience: Submit + wait.
  JoinResponse Run(JoinRequest request) { return Submit(std::move(request)).get(); }

  /// The options a request will actually execute under: the request's own
  /// JoinOptions with queue_memory_bytes clamped to the per-query budget
  /// (divided once more by shard_threads when the request will run
  /// sharded — up to that many per-pair queues live concurrently within
  /// the one query) and queue_disk cleared (the session spill disk is
  /// attached at execution time). Exposed so callers can reproduce a
  /// query's solo run exactly. The learned eDmax seed is NOT reflected
  /// here: it depends on runtime cache state, never changes results, and
  /// is only applied when shared_cache_entries > 0.
  core::JoinOptions EffectiveOptions(const JoinRequest& request) const;

  size_t per_query_queue_memory_bytes() const {
    return per_query_queue_memory_;
  }
  uint32_t max_inflight() const { return max_inflight_; }

  /// Requests finished since construction.
  uint64_t completed() const AMDJ_EXCLUDES(mutex_);
  /// Highest number of simultaneously executing queries observed.
  uint32_t peak_inflight() const AMDJ_EXCLUDES(mutex_);
  /// Requests rejected by the max_queued admission cap.
  uint64_t rejected() const AMDJ_EXCLUDES(mutex_);
  /// All admission counters under one lock (see AdmissionSnapshot).
  AdmissionSnapshot admission_snapshot() const AMDJ_EXCLUDES(mutex_);

  /// Shared-work counters: responses served by piggybacking on an
  /// identical in-flight execution / from the result cache; runs whose
  /// initial eDmax was seeded from an observed Dmax; shareable requests
  /// that found nothing and executed themselves. All zero when both
  /// dedupe_inflight and shared_cache_entries are off.
  uint64_t shared_inflight_hits() const;
  uint64_t shared_cache_hits() const;
  uint64_t shared_seed_hits() const;
  uint64_t shared_misses() const;
  size_t shared_cache_size() const;

 private:
  JoinResponse Execute(const JoinRequest& request, double wait_seconds,
                       const SharedWorkKeys& keys);
  /// Resolves every follower piggybacked on `exec_key` with a copy of the
  /// leader's response (shared_hit marker, per-follower wait/exec split).
  void ResolveFollowers(const JoinRequest& request,
                        const std::string& exec_key,
                        const JoinResponse& response) AMDJ_EXCLUDES(mutex_);
  /// True when a KDJ request routes through the sharded executor.
  bool Shardable(const JoinRequest& request) const;
  /// Runs the request under fully resolved options into `response`.
  void ExecuteRequest(const JoinRequest& request,
                      const core::JoinOptions& options,
                      JoinResponse* response);

  const rtree::RTree& r_;
  const rtree::RTree& s_;
  Options options_;
  uint32_t max_inflight_;
  size_t per_query_queue_memory_;

  /// Guards the admission counters below (the admission *queue* itself is
  /// the pool's FIFO task queue, guarded inside ThreadPool).
  mutable Mutex mutex_;
  uint32_t inflight_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint32_t queued_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint32_t peak_inflight_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t accepted_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t rejected_ AMDJ_GUARDED_BY(mutex_) = 0;

  /// Shared-work layer (dedupe map, result cache, observed-Dmax table);
  /// always constructed (cheap when disabled). Declared before pool_: the
  /// query workers resolve follower groups and record completions here, so
  /// it must outlive the pool's drain. Lock order: registry mutex first,
  /// then mutex_ (Submit nests the admission check inside the registry's
  /// membership check so the two decisions are one atomic step).
  std::unique_ptr<SharedWorkRegistry> shared_;

  /// Spill I/O pool (Options::spill_io_threads > 0 only). Declared before
  /// pool_: query workers submit I/O tasks here, so it must outlive the
  /// query pool's drain.
  std::unique_ptr<ThreadPool> io_pool_;

  /// Shard state (Options::shards > 1 only). The partitions are built once
  /// at construction from the unsharded trees; a failure is remembered and
  /// returned by every sharded request instead of aborting construction.
  /// Declared before pool_: query workers read the partitions, so they
  /// must outlive the pool's drain.
  Status shard_init_;
  std::unique_ptr<storage::InMemoryDiskManager> shard_disk_;
  std::unique_ptr<storage::BufferPool> shard_pool_;
  std::optional<core::Partition> r_partition_;
  std::optional<core::Partition> s_partition_;

  /// Last member: destroyed (drained) first, while the counters above are
  /// still alive for the final tasks.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace amdj::service

#endif  // AMDJ_SERVICE_JOIN_SERVICE_H_

// Negative-compile probe #3: passing a KeyVal where a DistVal is
// expected. DistanceToKey is one of the three sanctioned conversion
// fences and takes the *distance* side; feeding it a key would square an
// already-squared value under L2. The two wrapper types are distinct
// classes with no cross-conversion, so this translation unit MUST fail
// to compile.

#include "geom/metric.h"
#include "geom/units.h"

int main() {
  const amdj::geom::KeyVal key(9.0);
  // BUG (deliberate): a key handed to the distance-side fence.
  const amdj::geom::KeyVal twice =
      amdj::geom::DistanceToKey(key, amdj::geom::Metric::kL2);
  return twice.raw() > 0.0 ? 0 : 1;
}

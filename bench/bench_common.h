#ifndef AMDJ_BENCH_BENCH_COMMON_H_
#define AMDJ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/cost_model.h"
#include "core/distance_join.h"
#include "core/options.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::bench {

/// Command-line knobs shared by every figure bench:
///   --streets=N --hydro=N   workload sizes (default 120000 / 36000)
///   --buffer=BYTES          R-tree buffer size (default 512 KB)
///   --memory=BYTES          main-queue memory (default 512 KB)
///   --quick                 1/10th workload for smoke runs
///   --seed=S                workload seed
///   --spill-io-threads=N    async spill I/O threads (0 = synchronous)
struct BenchConfig {
  uint64_t streets = 120'000;
  uint64_t hydro = 36'000;
  size_t buffer_bytes = 512 * 1024;
  size_t memory_bytes = 512 * 1024;
  uint64_t seed = 20000'05'15;
  uint32_t spill_io_threads = 2;

  static BenchConfig FromArgs(int argc, char** argv);
};

/// A ready-to-join pair of R*-trees over the synthetic TIGER workload,
/// with a shared page file and LRU buffer (the paper's "R-tree buffer")
/// plus a separate spill disk for queues/sort runs.
struct BenchEnv {
  BenchConfig config;
  std::unique_ptr<storage::InMemoryDiskManager> tree_disk;
  std::unique_ptr<storage::InMemoryDiskManager> queue_disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> streets;
  std::unique_ptr<rtree::RTree> hydro;
  /// Async spill I/O pool (config.spill_io_threads > 0 only; results are
  /// bit-identical either way — only wall time moves).
  std::unique_ptr<ThreadPool> spill_io_pool;

  /// Join options wired to this environment's spill disk and memory size.
  core::JoinOptions MakeJoinOptions() const;
};

/// Builds the environment (bulk-loading both trees). Aborts on failure —
/// benches have no useful recovery.
BenchEnv MakeTigerEnv(const BenchConfig& config);

/// One measured algorithm execution.
struct RunResult {
  JoinStats stats;
  std::vector<core::ResultPair> results;
};

/// Runs a KDJ algorithm cold (buffer cleared first), filling in measured
/// CPU time and simulated I/O time (CostModel over the page I/O deltas of
/// both disks).
RunResult RunKdjCold(BenchEnv& env, core::KdjAlgorithm algorithm, uint64_t k,
                     const core::JoinOptions& options);

/// Runs an IDJ algorithm cold until `k` pairs are produced.
RunResult RunIdjCold(BenchEnv& env, core::IdjAlgorithm algorithm, uint64_t k,
                     const core::JoinOptions& options);

/// Appends one AMDJ_BENCH_JSON line for a run measured outside the
/// Run*Cold helpers (e.g. the sharded executor): `label` lands in the
/// "algorithm" field, and the full counter block — including the
/// shard_pairs_* pruning counters — rides along under "stats".
void AppendBenchJson(const std::string& label, uint64_t k, double wall_ms,
                     const JoinStats& stats);

/// Formatting helpers: every bench prints a Markdown-ish table mirroring
/// its figure/table in the paper.
void PrintHeader(const std::string& title, const BenchEnv& env);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
std::string FormatCount(uint64_t v);
std::string FormatSeconds(double s);

}  // namespace amdj::bench

#endif  // AMDJ_BENCH_BENCH_COMMON_H_

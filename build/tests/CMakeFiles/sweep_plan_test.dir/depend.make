# Empty dependencies file for sweep_plan_test.
# This may be replaced when dependencies are built.

#include "queue/segment_file.h"

#include <cstring>

#include "common/logging.h"

namespace amdj::queue {

SegmentFile::SegmentFile(storage::DiskManager* disk, size_t record_size,
                         JoinStats* stats)
    : disk_(disk), record_size_(record_size), stats_(stats) {
  AMDJ_CHECK(record_size_ >= 1 && record_size_ <= storage::kPageSize);
  // The write buffer grows on first Append; empty segments (predetermined
  // hybrid-queue ranges that never receive an entry) stay tiny.
}

SegmentFile::~SegmentFile() {
  if (disk_ != nullptr) {
    for (storage::PageId id : pages_) disk_->FreePage(id);
  }
}

SegmentFile::SegmentFile(SegmentFile&& other) noexcept
    : lower_bound(other.lower_bound),
      disk_(other.disk_),
      record_size_(other.record_size_),
      stats_(other.stats_),
      count_(other.count_),
      pages_(std::move(other.pages_)),
      write_buffer_(std::move(other.write_buffer_)) {
  other.disk_ = nullptr;
  other.pages_.clear();
  other.count_ = 0;
}

SegmentFile& SegmentFile::operator=(SegmentFile&& other) noexcept {
  if (this != &other) {
    if (disk_ != nullptr) {
      for (storage::PageId id : pages_) disk_->FreePage(id);
    }
    lower_bound = other.lower_bound;
    disk_ = other.disk_;
    record_size_ = other.record_size_;
    stats_ = other.stats_;
    count_ = other.count_;
    pages_ = std::move(other.pages_);
    write_buffer_ = std::move(other.write_buffer_);
    other.disk_ = nullptr;
    other.pages_.clear();
    other.count_ = 0;
  }
  return *this;
}

Status SegmentFile::Append(const void* record) {
  if (write_buffer_.size() + record_size_ > storage::kPageSize) {
    // A previous FlushBuffer failed and left a full buffer behind; retry
    // it before accepting more data, or the buffer would outgrow the
    // one-page flush staging area.
    AMDJ_RETURN_IF_ERROR(FlushBuffer());
  }
  const char* bytes = static_cast<const char*>(record);
  write_buffer_.insert(write_buffer_.end(), bytes, bytes + record_size_);
  ++count_;
  if (write_buffer_.size() + record_size_ > storage::kPageSize) {
    // Buffer cannot take another record: flush it as a full page.
    AMDJ_RETURN_IF_ERROR(FlushBuffer());
  }
  return Status::OK();
}

Status SegmentFile::FlushBuffer() {
  char page[storage::kPageSize];
  std::memset(page, 0, sizeof(page));
  std::memcpy(page, write_buffer_.data(), write_buffer_.size());
  const storage::PageId id = disk_->AllocatePage();
  const Status written = disk_->WritePage(id, page);
  if (!written.ok()) {
    // The page is neither recorded in pages_ nor reachable any other way:
    // return it to the allocator or it leaks for the disk's lifetime. The
    // buffered records stay in write_buffer_ (count_ already covers them),
    // so a healed disk can retry the flush.
    disk_->FreePage(id);
    return written;
  }
  if (stats_ != nullptr) ++stats_->queue_page_writes;
  pages_.push_back(id);
  write_buffer_.clear();
  return Status::OK();
}

Status SegmentFile::ReadAll(std::vector<char>* out) {
  out->clear();
  out->reserve(count_ * record_size_);
  const size_t per_page = RecordsPerPage();
  char page[storage::kPageSize];
  uint64_t remaining = count_ - write_buffer_.size() / record_size_;
  for (storage::PageId id : pages_) {
    AMDJ_RETURN_IF_ERROR(disk_->ReadPage(id, page));
    if (stats_ != nullptr) ++stats_->queue_page_reads;
    const size_t records =
        static_cast<size_t>(std::min<uint64_t>(per_page, remaining));
    out->insert(out->end(), page, page + records * record_size_);
    remaining -= records;
  }
  out->insert(out->end(), write_buffer_.begin(), write_buffer_.end());
  return Status::OK();
}

void SegmentFile::Drop() {
  for (storage::PageId id : pages_) disk_->FreePage(id);
  pages_.clear();
  write_buffer_.clear();
  count_ = 0;
}

}  // namespace amdj::queue

# Empty dependencies file for windowed_join_test.
# This may be replaced when dependencies are built.

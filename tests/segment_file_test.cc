#include "queue/segment_file.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/random.h"

namespace amdj::queue {
namespace {

struct Record {
  double key;
  uint64_t payload;
};

TEST(SegmentFileTest, AppendReadAllRoundTrip) {
  storage::InMemoryDiskManager disk;
  SegmentFile seg(&disk, sizeof(Record), nullptr);
  std::vector<Record> written;
  for (int i = 0; i < 1000; ++i) {
    Record r{static_cast<double>(i) * 0.5, static_cast<uint64_t>(i)};
    ASSERT_TRUE(seg.Append(&r).ok());
    written.push_back(r);
  }
  EXPECT_EQ(seg.count(), 1000u);
  std::vector<char> bytes;
  ASSERT_TRUE(seg.ReadAll(&bytes).ok());
  ASSERT_EQ(bytes.size(), 1000 * sizeof(Record));
  std::vector<Record> read(1000);
  std::memcpy(read.data(), bytes.data(), bytes.size());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(read[i].key, written[i].key);
    EXPECT_EQ(read[i].payload, written[i].payload);
  }
}

TEST(SegmentFileTest, PartialBufferIsIncludedInReadAll) {
  storage::InMemoryDiskManager disk;
  SegmentFile seg(&disk, sizeof(Record), nullptr);
  Record r{1.0, 42};
  ASSERT_TRUE(seg.Append(&r).ok());  // stays in the write buffer
  EXPECT_EQ(disk.stats().page_writes, 0u);
  std::vector<char> bytes;
  ASSERT_TRUE(seg.ReadAll(&bytes).ok());
  ASSERT_EQ(bytes.size(), sizeof(Record));
  Record back;
  std::memcpy(&back, bytes.data(), sizeof(back));
  EXPECT_EQ(back.payload, 42u);
}

TEST(SegmentFileTest, DropFreesPagesForReuse) {
  storage::InMemoryDiskManager disk;
  SegmentFile seg(&disk, sizeof(Record), nullptr);
  Record r{0, 0};
  for (int i = 0; i < 2000; ++i) {
    r.payload = static_cast<uint64_t>(i);
    ASSERT_TRUE(seg.Append(&r).ok());
  }
  const uint32_t pages_before = disk.PageCount();
  EXPECT_GT(pages_before, 0u);
  seg.Drop();
  EXPECT_EQ(seg.count(), 0u);
  // Freed pages are reused by the next allocation round.
  SegmentFile seg2(&disk, sizeof(Record), nullptr);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(seg2.Append(&r).ok());
  }
  EXPECT_EQ(disk.PageCount(), pages_before);
}

TEST(SegmentFileTest, CountsPageIoIntoStats) {
  storage::InMemoryDiskManager disk;
  JoinStats stats;
  SegmentFile seg(&disk, sizeof(Record), &stats);
  Record r{0, 0};
  const size_t per_page = storage::kPageSize / sizeof(Record);
  for (size_t i = 0; i < per_page * 3; ++i) {
    ASSERT_TRUE(seg.Append(&r).ok());
  }
  EXPECT_GE(stats.queue_page_writes, 2u);
  std::vector<char> bytes;
  ASSERT_TRUE(seg.ReadAll(&bytes).ok());
  EXPECT_GE(stats.queue_page_reads, 2u);
}

TEST(SegmentFileTest, MoveTransfersOwnership) {
  storage::InMemoryDiskManager disk;
  SegmentFile a(&disk, sizeof(Record), nullptr);
  Record r{3.5, 9};
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(a.Append(&r).ok());
  a.lower_bound = geom::KeyVal(7.0);
  SegmentFile b = std::move(a);
  EXPECT_EQ(b.count(), 500u);
  EXPECT_EQ(b.lower_bound, geom::KeyVal(7.0));
  std::vector<char> bytes;
  ASSERT_TRUE(b.ReadAll(&bytes).ok());
  EXPECT_EQ(bytes.size(), 500 * sizeof(Record));
  // The moved-from object is safely destructible (no double free): scope
  // exit exercises both destructors.
}

TEST(SegmentFileTest, ReadFailurePropagates) {
  storage::InMemoryDiskManager base;
  storage::FaultInjectionDiskManager faulty(&base);
  SegmentFile seg(&faulty, sizeof(Record), nullptr);
  Record r{0, 0};
  const size_t per_page = storage::kPageSize / sizeof(Record);
  for (size_t i = 0; i < per_page + 1; ++i) {
    ASSERT_TRUE(seg.Append(&r).ok());
  }
  faulty.FailReadsAfter(0);
  std::vector<char> bytes;
  EXPECT_EQ(seg.ReadAll(&bytes).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace amdj::queue

file(REMOVE_RECURSE
  "CMakeFiles/binary_heap_test.dir/binary_heap_test.cc.o"
  "CMakeFiles/binary_heap_test.dir/binary_heap_test.cc.o.d"
  "binary_heap_test"
  "binary_heap_test.pdb"
  "binary_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

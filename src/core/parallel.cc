#include "core/parallel.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/trace.h"
#include "core/expansion.h"
#include "core/plane_sweeper.h"
#include "storage/query_context.h"

namespace amdj::core {

BatchExpander::BatchExpander(const rtree::RTree& r, const rtree::RTree& s,
                             const JoinOptions& options)
    : r_(r),
      s_(s),
      options_(options),
      batch_target_(static_cast<size_t>(std::max<uint32_t>(
                        1, options.parallelism)) *
                    std::max<uint32_t>(1, options.batch_factor)),
      shared_cutoff_(geom::KeyVal::Infinity()),
      pool_(std::max<uint32_t>(1, options.parallelism), "amdj-join") {
  // One slot per batch position: tasks map 1:1 onto slots, so workers
  // never contend for buffers and rounds reuse the same allocations.
  slots_.resize(batch_target_);
  futures_.reserve(batch_target_);
}

void BatchExpander::ExpandOne(const ExpandTask& task, ExpandSlot* slot) {
  slot->candidates.clear();
  slot->covered = true;
  slot->status = Status::OK();
  // Reset here, not at merge: a discarded slot (round aborted on a tie
  // conflict) must not leak its counters into the next round's fold.
  slot->stats.Reset();
  // A stopped round discards every remaining slot; skip the work (and the
  // child fetches) if this task hasn't started by the time that happens.
  if (cancelled_.load(std::memory_order_relaxed)) return;
  // Per-worker task span: records on the worker's own thread buffer, so
  // merged traces show the true overlap of a round's expansions.
  TraceSpan span(options_.tracer, "expand_task",
                 {{"r_level", static_cast<double>(task.pair.r.level)},
                  {"s_level", static_cast<double>(task.pair.s.level)},
                  {"key", task.pair.key.raw()}});

  const bool dynamic_axis = task.static_axis_cutoff < geom::KeyVal::Zero();
  // `axis_cutoff` is what the sweep re-reads before every comparison; the
  // callback refreshes it from the shared atomic in dynamic mode, so a
  // coordinator-side Tighten() prunes the remainder of an in-flight sweep.
  geom::KeyVal axis_cutoff =
      dynamic_axis ? shared_cutoff_.load(std::memory_order_relaxed)
                   : task.static_axis_cutoff;
  // Late prune (dynamic mode only): the cutoff may have shrunk below this
  // pair's key since it was batched. Its children would all lie
  // strictly beyond the final k-th distance, so skipping the expansion
  // cannot change the result — it only saves the two child fetches that a
  // sequential pop would equally have skipped. Static-cutoff (AM-KDJ
  // stage-one) tasks are exempt: their pair stays inside eDmax by
  // construction, and the sequential stage expands those unconditionally.
  if (dynamic_axis && task.pair.key > axis_cutoff) return;
  ++slot->stats.node_expansions;

  slot->status = ChildList(r_, task.pair.r, options_.r_window, &slot->left);
  if (!slot->status.ok()) return;
  slot->status = ChildList(s_, task.pair.s, options_.s_window, &slot->right);
  if (!slot->status.ok()) return;
  slot->plan =
      task.has_fixed_plan
          ? task.plan
          : ChooseSweepPlan(task.pair.r.rect, task.pair.s.rect,
                            geom::KeyToDistance(axis_cutoff, options_.metric),
                            options_.sweep);

  geom::KeyVal dist_cutoff = shared_cutoff_.load(std::memory_order_relaxed);
  KeyedSweepSpec spec;
  spec.metric = options_.metric;
  spec.axis_cutoff_key = &axis_cutoff;
  spec.dist_cutoff_key = &dist_cutoff;
  spec.skip_axis_below_key = task.skip_below;  // examined by stage one
  slot->covered =
      PlaneSweepKeyed(
          slot->left, slot->right, slot->plan, spec, &slot->stats,
          [&](const PairRef& lref, const PairRef& rref,
              geom::KeyVal dist_key) {
            // Refresh from the shared atomic once per survivor (not per
            // candidate: stale-read safety makes the coarser cadence
            // harmless). `cutoff` only ever shrinks, and any value we
            // read is an upper bound of the final k-th key, so dropping
            // here never loses a result pair; keeping an extra candidate
            // is fine because the coordinator re-filters before pushing.
            const geom::KeyVal cutoff =
                shared_cutoff_.load(std::memory_order_relaxed);
            dist_cutoff = cutoff;
            if (dynamic_axis) axis_cutoff = cutoff;
            if (dist_key > cutoff) return;
            if (options_.exclude_same_id && IsSelfPair(lref, rref)) return;
            PairEntry e;
            e.r = lref;
            e.s = rref;
            e.key = dist_key;
            slot->candidates.push_back(e);
          })
          .axis_covered;
}

Status BatchExpander::Run(
    const std::vector<ExpandTask>& tasks, geom::KeyVal initial_cutoff,
    const std::function<StatusOr<bool>(size_t, ExpandSlot*)>& merge) {
  AMDJ_CHECK(owner_.CalledOnValidThread())
      << "BatchExpander::Run off the coordinator thread";
  AMDJ_CHECK(tasks.size() <= slots_.size())
      << "batch of " << tasks.size() << " exceeds target " << batch_target_;
  shared_cutoff_.store(initial_cutoff, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  if (tasks.size() == 1) {
    // Single-task round (the adaptive limit collapsed to best-first):
    // expand inline on this thread — a pool round-trip buys nothing and
    // costs a wakeup plus two context switches per expansion.
    ExpandOne(tasks[0], &slots_[0]);
    if (!slots_[0].status.ok()) return slots_[0].status;
    StatusOr<bool> merged = merge(0, &slots_[0]);
    return merged.ok() ? Status::OK() : merged.status();
  }
  futures_.clear();
  // Workers fetch child nodes through the buffer pool, so they must carry
  // the coordinator's per-query attribution: re-install its scope (if any)
  // on every worker task. Pool workers are shared across queries in
  // principle, so the scope is strictly task-scoped.
  const storage::QueryAttribution* attribution =
      storage::QueryAttributionScope::Current();
  JoinStats* query_stats =
      attribution != nullptr ? attribution->stats : nullptr;
  Tracer* query_tracer =
      attribution != nullptr ? attribution->tracer : nullptr;
  const bool attributed = attribution != nullptr;
  for (size_t i = 0; i < tasks.size(); ++i) {
    futures_.push_back(pool_.Submit(
        [this, &tasks, i, attributed, query_stats, query_tracer] {
          if (attributed) {
            const storage::QueryAttributionScope scope(query_stats,
                                                       query_tracer);
            ExpandOne(tasks[i], &slots_[i]);
          } else {
            ExpandOne(tasks[i], &slots_[i]);
          }
        }));
  }
  // Consume in task order while later workers keep crunching; the merge
  // callback runs on this thread only, so queue and tracker stay
  // single-writer. Always drain every future — slots and `tasks` are
  // referenced by in-flight workers even after an error or merge stop.
  Status status = Status::OK();
  bool merging = true;
  for (size_t i = 0; i < tasks.size(); ++i) {
    futures_[i].wait();
    if (!status.ok() || !merging) continue;
    ExpandSlot* slot = &slots_[i];
    if (!slot->status.ok()) {
      status = slot->status;
      continue;
    }
    StatusOr<bool> keep_going = merge(i, slot);
    if (!keep_going.ok()) {
      status = keep_going.status();
    } else {
      merging = *keep_going;
    }
    if (!status.ok() || !merging) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }
  return status;
}

}  // namespace amdj::core

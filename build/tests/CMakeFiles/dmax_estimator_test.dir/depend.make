# Empty dependencies file for dmax_estimator_test.
# This may be replaced when dependencies are built.

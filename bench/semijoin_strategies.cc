// Extra experiment: distance semi-join / kNN join strategy crossover.
// The incremental-join strategy shares one traversal across all R objects
// but must surface pairs globally by distance; the per-object-NN strategy
// re-queries S once per R object. Which wins depends on |R| and on how
// far the partners are.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/semi_join.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  // The incremental-join strategy materializes ~|R| * neighbors pairs, so
  // this bench runs on a 1/10th sub-workload to stay minutes-free even at
  // paper scale.
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  config.streets = std::max<uint64_t>(1000, config.streets / 10);
  config.hydro = std::max<uint64_t>(300, config.hydro / 10);
  BenchEnv env = MakeTigerEnv(config);
  PrintHeader("Extra: semi-join / kNN-join strategy comparison", env);

  const std::vector<int> widths = {12, 26, 26};
  PrintRow({"neighbors", "incremental join", "per-object NN"}, widths);
  std::printf("(cpu seconds / distance computations; streets -> hydro)\n");
  for (const uint64_t neighbors : {1ull, 4ull, 16ull}) {
    std::vector<std::string> row = {FormatCount(neighbors)};
    for (const auto strategy : {core::SemiJoinStrategy::kIncrementalJoin,
                                core::SemiJoinStrategy::kPerObjectNn}) {
      const Status cleared = env.pool->Clear();
      AMDJ_CHECK(cleared.ok()) << cleared.ToString();
      JoinStats stats;
      env.pool->SetStatsSink(&stats);
      Timer timer;
      auto result = core::KnnJoin(*env.streets, *env.hydro, neighbors,
                                  env.MakeJoinOptions(), strategy, &stats);
      const double seconds = timer.ElapsedSeconds();
      env.pool->SetStatsSink(nullptr);
      AMDJ_CHECK(result.ok()) << result.status().ToString();
      AMDJ_CHECK(result->size() >= env.streets->size());
      row.push_back(FormatSeconds(seconds) + " / " +
                    FormatCount(stats.real_distance_computations));
    }
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

# Empty dependencies file for table2_node_accesses.
# This may be replaced when dependencies are built.

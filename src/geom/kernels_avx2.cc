// AVX2 kernel backend. This translation unit is the only one compiled with
// -mavx2 (and explicitly WITHOUT -mfma: a fused mul+add would round once
// where the scalar path rounds twice, breaking the bit-exactness contract).
// Every lane performs exactly the scalar operation sequence: per-axis
// max(max(sub, sub), 0), then mul, mul, add.

#include "geom/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace amdj::geom::internal {

namespace {

inline double MaxOp(double a, double b) { return a > b ? a : b; }

inline double AxisGap(double d1, double d2) {
  return MaxOp(MaxOp(d1, d2), 0.0);
}

}  // namespace

void BatchAxisDistanceAvx2(const double* lo, double anchor_hi, std::size_t n,
                           double* out) {
  const __m256d hi = _mm256_set1_pd(anchor_hi);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gap = _mm256_sub_pd(_mm256_loadu_pd(lo + i), hi);
    _mm256_storeu_pd(out + i, _mm256_max_pd(gap, zero));
  }
  for (; i < n; ++i) out[i] = MaxOp(lo[i] - anchor_hi, 0.0);
}

void BatchMinDistSquaredAvx2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out) {
  const __m256d ql0 = _mm256_set1_pd(q_lo0);
  const __m256d qh0 = _mm256_set1_pd(q_hi0);
  const __m256d ql1 = _mm256_set1_pd(q_lo1);
  const __m256d qh1 = _mm256_set1_pd(q_hi1);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(ql0, _mm256_loadu_pd(hi0 + i)),
                      _mm256_sub_pd(_mm256_loadu_pd(lo0 + i), qh0)),
        zero);
    const __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(ql1, _mm256_loadu_pd(hi1 + i)),
                      _mm256_sub_pd(_mm256_loadu_pd(lo1 + i), qh1)),
        zero);
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  for (; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - hi0[i], lo0[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - hi1[i], lo1[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

void BatchMinDistSquaredPointAvx2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out) {
  const __m256d ql0 = _mm256_set1_pd(q_lo0);
  const __m256d qh0 = _mm256_set1_pd(q_hi0);
  const __m256d ql1 = _mm256_set1_pd(q_lo1);
  const __m256d qh1 = _mm256_set1_pd(q_hi1);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(px + i);
    const __m256d y = _mm256_loadu_pd(py + i);
    const __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(ql0, x), _mm256_sub_pd(x, qh0)), zero);
    const __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(ql1, y), _mm256_sub_pd(y, qh1)), zero);
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  for (; i < n; ++i) {
    const double dx = AxisGap(q_lo0 - px[i], px[i] - q_hi0);
    const double dy = AxisGap(q_lo1 - py[i], py[i] - q_hi1);
    out[i] = dx * dx + dy * dy;
  }
}

std::size_t BatchFilterWithinAvx2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx) {
  const __m256d c = _mm256_set1_pd(cutoff);
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + i), c, _CMP_LE_OQ));
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out_idx[m++] = static_cast<std::uint32_t>(i + bit);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (keys[i] <= cutoff) out_idx[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

}  // namespace amdj::geom::internal

#endif  // x86-64

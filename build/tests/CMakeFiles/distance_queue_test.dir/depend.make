# Empty dependencies file for distance_queue_test.
# This may be replaced when dependencies are built.

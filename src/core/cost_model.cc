#include "core/cost_model.h"

#include "storage/page.h"

namespace amdj::core {

double CostModel::Seconds(const storage::DiskStats& delta) const {
  const double page_mb =
      static_cast<double>(storage::kPageSize) / (1024.0 * 1024.0);
  const double random_ops = static_cast<double>(delta.random_reads) +
                            static_cast<double>(delta.random_writes);
  const double seq_ops = static_cast<double>(delta.sequential_reads) +
                         static_cast<double>(delta.sequential_writes);
  return random_ops * page_mb / options_.random_mb_per_sec +
         seq_ops * page_mb / options_.sequential_mb_per_sec;
}

storage::DiskStats CostModel::Delta(const storage::DiskStats& before,
                                    const storage::DiskStats& after) {
  storage::DiskStats d;
  d.page_reads = after.page_reads - before.page_reads;
  d.page_writes = after.page_writes - before.page_writes;
  d.sequential_reads = after.sequential_reads - before.sequential_reads;
  d.random_reads = after.random_reads - before.random_reads;
  d.sequential_writes = after.sequential_writes - before.sequential_writes;
  d.random_writes = after.random_writes - before.random_writes;
  d.pages_allocated = after.pages_allocated - before.pages_allocated;
  return d;
}

}  // namespace amdj::core

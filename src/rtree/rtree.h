#ifndef AMDJ_RTREE_RTREE_H_
#define AMDJ_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"

namespace amdj::rtree {

/// Disk-based R*-tree (Beckmann et al., SIGMOD'90): ChooseSubtree with
/// overlap-minimizing leaf selection, margin-driven split axis selection,
/// and forced reinsertion. Nodes live on 4 KB pages behind a BufferPool.
///
/// Not thread-safe; the paper's workloads are single-threaded.
class RTree {
 public:
  struct Options {
    /// Maximum entries per node; must be in [4, kMaxEntriesPerPage]. Tests
    /// shrink this to force deep trees on small inputs.
    uint32_t max_entries = kMaxEntriesPerPage;
    /// Minimum entries per node; 0 means 40% of max (the R* default).
    uint32_t min_entries = 0;
    /// Enables R* forced reinsertion on overflow (once per level per
    /// insertion).
    bool forced_reinsert = true;
    /// Fraction of entries evicted by a forced reinsert (R* uses 0.3).
    double reinsert_fraction = 0.3;
  };

  /// Everything needed to re-open a tree over an existing page file; see
  /// WriteMetaPage / OpenFromMetaPage for the stock on-disk round trip.
  struct Meta {
    storage::PageId root = storage::kInvalidPageId;
    uint16_t height = 1;
    uint64_t size = 0;
    uint64_t node_count = 1;
    geom::Rect bounds = geom::Rect::Empty();
    uint32_t max_entries = 0;
    uint32_t min_entries = 0;
  };

  /// Creates an empty tree whose nodes are allocated from `pool`'s disk.
  /// Does not take ownership of `pool`.
  static StatusOr<std::unique_ptr<RTree>> Create(storage::BufferPool* pool,
                                                 const Options& options);

  /// Re-opens a tree previously described by Meta() over the same (or a
  /// faithfully persisted) page file. Fields of `options` not covered by
  /// Meta (forced_reinsert, reinsert_fraction) apply to future inserts.
  static StatusOr<std::unique_ptr<RTree>> Open(storage::BufferPool* pool,
                                               const Meta& meta,
                                               const Options& options);

  /// Snapshot of the tree's identity for persistence.
  Meta ToMeta() const;

  /// Serializes Meta() into the given page (allocate one and remember its
  /// id, conventionally page 0 of a dedicated file).
  Status WriteMetaPage(storage::PageId page_id) const;

  /// Re-opens a tree from a meta page written by WriteMetaPage.
  static StatusOr<std::unique_ptr<RTree>> OpenFromMetaPage(
      storage::BufferPool* pool, storage::PageId page_id,
      const Options& options);
  static StatusOr<std::unique_ptr<RTree>> OpenFromMetaPage(
      storage::BufferPool* pool, storage::PageId page_id) {
    return OpenFromMetaPage(pool, page_id, Options());
  }

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts one object. `id` is an opaque caller-assigned object id.
  Status Insert(const geom::Rect& rect, uint32_t id);

  /// Removes one object whose MBR and id match exactly (the first match if
  /// duplicates exist). `*found` reports whether anything was removed.
  /// Underflowing nodes are dissolved and their objects reinserted
  /// (CondenseTree, flattening orphaned subtrees to objects — simpler than
  /// whole-subtree reinsertion and only costlier under mass deletion).
  Status Delete(const geom::Rect& rect, uint32_t id, bool* found);

  /// Replaces the tree contents by STR bulk loading (Sort-Tile-Recursive).
  /// `fill` in (0, 1] is the node fill factor.
  Status BulkLoad(std::vector<Entry> objects, double fill = 0.9);

  /// Replaces the tree contents by Hilbert-curve bulk loading (see
  /// HilbertBulkLoader for the trade-off against STR).
  Status BulkLoadHilbert(std::vector<Entry> objects, double fill = 0.9);

  /// All object entries whose MBR intersects `query`.
  StatusOr<std::vector<Entry>> RangeQuery(const geom::Rect& query) const;

  /// Invokes `fn` for every object entry in the tree (tree order).
  Status ForEachObject(
      const std::function<void(const Entry&)>& fn) const;

  /// Reads the node stored at `page_id` (counts as one node access on the
  /// buffer pool). Used by the join algorithms to expand node pairs.
  Status ReadNode(storage::PageId page_id, Node* out) const;

  /// Page id of the root node.
  storage::PageId root() const { return root_; }
  /// Number of levels; 1 for a tree whose root is a leaf.
  uint16_t height() const { return height_; }
  /// Number of objects.
  uint64_t size() const { return size_; }
  /// Number of nodes (internal + leaf).
  uint64_t node_count() const { return node_count_; }
  /// MBR of the whole tree (Rect::Empty() when empty).
  geom::Rect bounds() const { return bounds_; }

  storage::BufferPool* buffer_pool() const { return pool_; }
  const Options& options() const { return options_; }

  /// Exhaustively checks structural invariants (entry counts, level
  /// monotonicity, parent-MBR containment, object count). For tests.
  Status Validate() const;

 private:
  RTree(storage::BufferPool* pool, const Options& options)
      : pool_(pool), options_(options) {}

  Status WriteNode(storage::PageId page_id, const Node& node) const;
  StatusOr<storage::PageId> AllocNode(const Node& node) const;

  /// Inserts `entry` at `target_level`. On structural overflow may split
  /// nodes (propagating upward) or schedule forced reinserts.
  struct InsertContext {
    // Levels at which a forced reinsert has already happened for the
    // current top-level insertion (R* does at most one per level).
    std::vector<bool> reinserted_levels;
    // Entries evicted by forced reinserts, tagged with their level.
    std::vector<std::pair<uint16_t, Entry>> pending;
  };

  struct InsertResult {
    bool split = false;
    Entry new_sibling;  // valid iff split
    geom::Rect mbr;     // updated MBR of the visited node
  };

  Status InsertRecurse(storage::PageId page_id, uint16_t node_level,
                       const Entry& entry, uint16_t target_level,
                       InsertContext* ctx, InsertResult* result);

  /// The full insertion driver (pending reinserts, root growth) without
  /// the size/bounds bookkeeping; shared by Insert and Delete's orphan
  /// reinsertion.
  Status InsertEntryAtLevel(const Entry& entry, uint16_t target_level);

  Status DeleteRecurse(storage::PageId page_id, uint16_t node_level,
                       const geom::Rect& rect, uint32_t id, bool* found,
                       bool* underflow, geom::Rect* mbr,
                       std::vector<Entry>* orphan_objects);

  /// Gathers every object of the subtree and frees its node pages.
  Status CollectObjectsAndFree(storage::PageId page_id,
                               std::vector<Entry>* out);

  /// Discards the page from the buffer pool and returns it to the disk.
  void FreeNodePage(storage::PageId page_id);

  /// R* ChooseSubtree among `node`'s children for `rect`.
  size_t ChooseSubtree(const Node& node, const geom::Rect& rect) const;

  /// Splits `node` (which has max_entries + 1 entries) using the R* axis
  /// and index selection; the removed half is returned in `sibling`.
  void SplitNode(Node* node, Node* sibling) const;

  /// Removes the reinsert_fraction entries farthest from the node's center.
  void PickReinsertVictims(Node* node, std::vector<Entry>* victims) const;

  Status GrowRoot(const Entry& left, const Entry& right, uint16_t new_level);

  Status ValidateRecurse(storage::PageId page_id, uint16_t expected_level,
                         const geom::Rect& parent_rect, bool is_root,
                         uint64_t* objects, uint64_t* nodes) const;

  storage::BufferPool* pool_;
  Options options_;
  storage::PageId root_ = storage::kInvalidPageId;
  uint16_t height_ = 1;
  uint64_t size_ = 0;
  uint64_t node_count_ = 1;
  geom::Rect bounds_ = geom::Rect::Empty();

  friend class StrBulkLoader;
  friend class HilbertBulkLoader;
};

}  // namespace amdj::rtree

#endif  // AMDJ_RTREE_RTREE_H_

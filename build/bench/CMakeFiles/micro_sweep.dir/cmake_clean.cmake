file(REMOVE_RECURSE
  "CMakeFiles/micro_sweep.dir/micro_sweep.cc.o"
  "CMakeFiles/micro_sweep.dir/micro_sweep.cc.o.d"
  "micro_sweep"
  "micro_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

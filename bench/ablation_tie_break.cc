// Ablation: main-queue tie handling. Census-style data has hundreds of
// thousands of zero-distance (intersecting) pairs, so how a best-first
// traversal orders equal-distance entries decides whether it surfaces
// results immediately (objects-first) or expands the whole plateau first
// (kind-blind ids). The kind-blind mode approximates a 1998-era
// implementation and explains why this reproduction's HS baseline is far
// cheaper at small k than the numbers in the paper's Table 2 (see
// EXPERIMENTS.md).

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Ablation: main-queue tie-break policy", env);

  const std::vector<uint64_t> ks = {100, 1000, 10000};
  const std::vector<int> widths = {10, 30, 30};
  PrintRow({"", "objects-first (this repo)", "kind-blind (1998-style)"},
           {10, 30, 30});
  std::printf("(distance computations / unbuffered node accesses)\n");
  for (const auto algorithm :
       {core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
        core::KdjAlgorithm::kAmKdj}) {
    std::printf("## %s\n", core::ToString(algorithm));
    for (uint64_t k : ks) {
      std::vector<std::string> row = {"k=" + FormatCount(k)};
      for (const auto tie_break :
           {core::TieBreak::kObjectsFirst, core::TieBreak::kDistanceOnly}) {
        core::JoinOptions options = env.MakeJoinOptions();
        options.tie_break = tie_break;
        const RunResult run = RunKdjCold(env, algorithm, k, options);
        row.push_back(FormatCount(run.stats.real_distance_computations) +
                      " / " + FormatCount(run.stats.node_accesses));
      }
      PrintRow(row, widths);
    }
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

# Empty compiler generated dependencies file for segment_file_test.
# This may be replaced when dependencies are built.

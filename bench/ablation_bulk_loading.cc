// Ablation: tree construction method. Compares STR bulk loading, Hilbert
// bulk loading and one-by-one R* insertion on build cost, tree shape and
// downstream work (range query node accesses, AM-KDJ join work).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"

namespace amdj::bench {
namespace {

struct Built {
  std::unique_ptr<storage::InMemoryDiskManager> disk;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<rtree::RTree> r;
  std::unique_ptr<rtree::RTree> s;
  double build_seconds = 0.0;
};

Built Build(const workload::Dataset& r_data, const workload::Dataset& s_data,
            int method, size_t buffer_pages) {
  Built b;
  b.disk = std::make_unique<storage::InMemoryDiskManager>();
  b.pool = std::make_unique<storage::BufferPool>(b.disk.get(), buffer_pages);
  b.r = rtree::RTree::Create(b.pool.get(), {}).value();
  b.s = rtree::RTree::Create(b.pool.get(), {}).value();
  Timer timer;
  auto load = [&](rtree::RTree& tree, const workload::Dataset& data) {
    Status st;
    switch (method) {
      case 0:
        st = tree.BulkLoad(data.ToEntries());
        break;
      case 1:
        st = tree.BulkLoadHilbert(data.ToEntries());
        break;
      default: {
        uint32_t id = 0;
        for (const geom::Rect& rect : data.objects) {
          st = tree.Insert(rect, id++);
          if (!st.ok()) break;
        }
        break;
      }
    }
    AMDJ_CHECK(st.ok()) << st.ToString();
  };
  load(*b.r, r_data);
  load(*b.s, s_data);
  b.build_seconds = timer.ElapsedSeconds();
  return b;
}

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromArgs(argc, argv);
  workload::TigerSynthOptions wopts;
  wopts.street_segments = config.streets / 2;
  wopts.hydro_objects = config.hydro / 2;
  wopts.seed = config.seed;
  const auto r_data = workload::TigerStreets(wopts);
  const auto s_data = workload::TigerHydro(wopts);
  const size_t buffer_pages =
      std::max<size_t>(8, config.buffer_bytes / storage::kPageSize);

  std::printf("# Ablation: STR vs Hilbert vs R* insertion build\n");
  std::printf("workload: tiger-synth %llu x %llu\n\n",
              (unsigned long long)wopts.street_segments,
              (unsigned long long)wopts.hydro_objects);
  const std::vector<int> widths = {12, 12, 10, 16, 16, 14};
  PrintRow({"method", "build (s)", "nodes", "range acc/query",
            "join dist comp", "join resp(s)"},
           widths);

  const char* names[] = {"STR", "Hilbert", "R*-insert"};
  for (int method = 0; method < 3; ++method) {
    Built b = Build(r_data, s_data, method, buffer_pages);

    // Range-query node accesses: 200 random 1% window queries, cold cache.
    AMDJ_CHECK(b.pool->Clear().ok());
    JoinStats qstats;
    b.pool->SetStatsSink(&qstats);
    Random rng(99);
    for (int q = 0; q < 200; ++q) {
      const double w = workload::kUniverseSize * 0.01;
      const double x = rng.Uniform(0, workload::kUniverseSize - w);
      const double y = rng.Uniform(0, workload::kUniverseSize - w);
      auto hits = b.r->RangeQuery(geom::Rect(x, y, x + w, y + w));
      AMDJ_CHECK(hits.ok());
    }
    b.pool->SetStatsSink(nullptr);

    // Join work.
    AMDJ_CHECK(b.pool->Clear().ok());
    const storage::DiskStats before = b.disk->stats();
    JoinStats jstats;
    core::JoinOptions options;
    options.queue_memory_bytes = config.memory_bytes;
    Timer timer;
    auto result = core::RunKDistanceJoin(*b.r, *b.s, 10000,
                                         core::KdjAlgorithm::kAmKdj, options,
                                         &jstats);
    AMDJ_CHECK(result.ok());
    const core::CostModel model;
    const double resp =
        timer.ElapsedSeconds() +
        model.Seconds(core::CostModel::Delta(before, b.disk->stats()));

    char build[32], accq[32];
    std::snprintf(build, sizeof(build), "%.3f", b.build_seconds);
    std::snprintf(accq, sizeof(accq), "%.1f",
                  static_cast<double>(qstats.node_accesses) / 200.0);
    PrintRow({names[method], build,
              FormatCount(b.r->node_count() + b.s->node_count()), accq,
              FormatCount(jstats.real_distance_computations),
              FormatSeconds(resp)},
             widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

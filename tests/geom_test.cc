#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace amdj::geom {
namespace {

TEST(PointTest, CoordAccess) {
  Point p(3.0, -4.0);
  EXPECT_EQ(p.Coord(0), 3.0);
  EXPECT_EQ(p.Coord(1), -4.0);
  p.SetCoord(0, 1.0);
  p.SetCoord(1, 2.0);
  EXPECT_EQ(p, Point(1.0, 2.0));
}

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(Point(0, 0), Point(3, 4)), 25.0);
  EXPECT_DOUBLE_EQ(Distance(Point(1, 1), Point(1, 1)), 0.0);
}

TEST(RectTest, EmptyAndValidity) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.IsValid());
  EXPECT_EQ(e.Area(), 0.0);
  const Rect r(0, 0, 2, 3);
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.IsValid());
}

TEST(RectTest, PointRectIsValidWithZeroArea) {
  const Rect p = Rect::FromPoint(Point(5, 5));
  EXPECT_TRUE(p.IsValid());
  EXPECT_EQ(p.Area(), 0.0);
  EXPECT_TRUE(p.Contains(Point(5, 5)));
}

TEST(RectTest, Measures) {
  const Rect r(1, 2, 4, 6);
  EXPECT_DOUBLE_EQ(r.Side(0), 3.0);
  EXPECT_DOUBLE_EQ(r.Side(1), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), Point(2.5, 4.0));
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Rect(1, 1, 11, 9)));
  EXPECT_TRUE(a.Intersects(Rect(9, 9, 20, 20)));
  EXPECT_TRUE(a.Intersects(Rect(10, 10, 20, 20)));  // touching counts
  EXPECT_FALSE(a.Intersects(Rect(10.1, 0, 20, 10)));
}

TEST(RectTest, ExtendGrowsToCover) {
  Rect r = Rect::Empty();
  r.Extend(Point(1, 2));
  EXPECT_EQ(r, Rect(1, 2, 1, 2));
  r.Extend(Rect(-1, 0, 0, 5));
  EXPECT_EQ(r, Rect(-1, 0, 1, 5));
}

TEST(RectTest, UnionAndIntersection) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 2, 6, 6);
  EXPECT_EQ(Union(a, b), Rect(0, 0, 6, 6));
  EXPECT_EQ(Intersection(a, b), Rect(2, 2, 4, 4));
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 4.0);
  EXPECT_TRUE(Intersection(a, Rect(5, 5, 6, 6)).IsEmpty());
  EXPECT_EQ(IntersectionArea(a, Rect(5, 5, 6, 6)), 0.0);
}

TEST(RectTest, AxisDistance) {
  const Rect a(0, 0, 2, 2);
  const Rect b(5, 0, 6, 2);
  EXPECT_DOUBLE_EQ(AxisDistance(a, b, 0), 3.0);
  EXPECT_DOUBLE_EQ(AxisDistance(b, a, 0), 3.0);  // symmetric
  EXPECT_DOUBLE_EQ(AxisDistance(a, b, 1), 0.0);  // overlapping projections
}

TEST(RectTest, MinDistanceDisjoint) {
  const Rect a(0, 0, 1, 1);
  const Rect b(4, 5, 6, 7);
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 5.0);  // 3-4-5 corner-to-corner
  EXPECT_DOUBLE_EQ(MinDistanceSquared(a, b), 25.0);
}

TEST(RectTest, MinDistanceZeroWhenIntersecting) {
  EXPECT_EQ(MinDistance(Rect(0, 0, 5, 5), Rect(3, 3, 8, 8)), 0.0);
  EXPECT_EQ(MinDistance(Rect(0, 0, 5, 5), Rect(5, 5, 8, 8)), 0.0);
}

TEST(RectTest, MaxDistance) {
  const Rect a(0, 0, 1, 1);
  const Rect b(2, 0, 3, 1);
  // Farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1).
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::sqrt(10.0));
  // Of a rect with itself: the diagonal.
  EXPECT_DOUBLE_EQ(MaxDistance(a, a), std::sqrt(2.0));
}

TEST(RectTest, MinMaxDistanceOrderingProperty) {
  Random rng(42);
  for (int i = 0; i < 1000; ++i) {
    auto rect = [&] {
      const double x0 = rng.Uniform(-50, 50);
      const double y0 = rng.Uniform(-50, 50);
      return Rect(x0, y0, x0 + rng.Uniform(0, 20), y0 + rng.Uniform(0, 20));
    };
    const Rect a = rect();
    const Rect b = rect();
    const double axis_x = AxisDistance(a, b, 0);
    const double axis_y = AxisDistance(a, b, 1);
    const double mind = MinDistance(a, b);
    const double maxd = MaxDistance(a, b);
    // axis distance <= real min distance <= max distance (the inequality
    // the plane-sweep pruning relies on).
    EXPECT_LE(axis_x, mind + 1e-12);
    EXPECT_LE(axis_y, mind + 1e-12);
    EXPECT_LE(mind, maxd + 1e-12);
    // Min distance is realized between contained points.
    EXPECT_DOUBLE_EQ(MinDistance(a, a), 0.0);
  }
}

TEST(RectTest, MinDistanceMatchesBruteForceOnGrid) {
  // Compare against a dense point-sampled approximation.
  const Rect a(0, 0, 2, 1);
  const Rect b(5, 3, 6, 6);
  double best = 1e18;
  for (double ax = 0; ax <= 2.0; ax += 0.125) {
    for (double ay = 0; ay <= 1.0; ay += 0.125) {
      for (double bx = 5; bx <= 6.0; bx += 0.125) {
        for (double by = 3; by <= 6.0; by += 0.125) {
          best = std::min(best, Distance(Point(ax, ay), Point(bx, by)));
        }
      }
    }
  }
  EXPECT_NEAR(MinDistance(a, b), best, 1e-9);
}

}  // namespace
}  // namespace amdj::geom

file(REMOVE_RECURSE
  "CMakeFiles/fig14_edmax.dir/fig14_edmax.cc.o"
  "CMakeFiles/fig14_edmax.dir/fig14_edmax.cc.o.d"
  "fig14_edmax"
  "fig14_edmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_edmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

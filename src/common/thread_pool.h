#ifndef AMDJ_COMMON_THREAD_POOL_H_
#define AMDJ_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace amdj {

/// Fixed-size pool of named worker threads executing submitted tasks in
/// FIFO order. Used by the parallel join executor (core::BatchExpander) to
/// fan node-pair expansions out across cores; generic enough for any
/// CPU-bound fan-out.
///
/// Lifecycle: workers start in the constructor and idle on a condition
/// variable when the task queue is empty (no spinning). The destructor
/// performs an idle shutdown: it stops accepting new tasks, wakes every
/// worker, lets the already-queued tasks drain, and joins. Submitting
/// after (or during) destruction is a programming error.
///
/// Thread-safety: Submit may be called concurrently from any thread. The
/// queue and the shutdown flag are guarded by `mutex_` — annotated, so the
/// discipline is compiler-checked (common/annotations.h).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1). Workers are named
  /// "<name_prefix>-<i>" where the platform supports thread naming.
  explicit ThreadPool(size_t num_threads,
                      const std::string& name_prefix = "amdj-pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker and returns a future for
  /// its result. Exceptions escaping `fn` are captured into the future
  /// (the project API is exception-free, so in practice this only carries
  /// completion).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet started (for tests/introspection).
  size_t queued() const AMDJ_EXCLUDES(mutex_);

 private:
  void Enqueue(std::function<void()> fn) AMDJ_EXCLUDES(mutex_);
  void WorkerLoop(size_t index) AMDJ_EXCLUDES(mutex_);

  const std::string name_prefix_;
  /// Utilization metrics, keyed by pool name (resolved once here; pools
  /// sharing a name_prefix share the series). Raw pointers into the global
  /// registry — stable for the process lifetime.
  Counter* tasks_total_metric_;
  Gauge* queued_tasks_metric_;
  Gauge* busy_workers_metric_;
  mutable Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> tasks_ AMDJ_GUARDED_BY(mutex_);
  /// Written only by the constructor, joined by the destructor — the
  /// in-between is read-only (size()), so no capability is needed.
  std::vector<std::thread> workers_;
  bool shutting_down_ AMDJ_GUARDED_BY(mutex_) = false;
};

}  // namespace amdj

#endif  // AMDJ_COMMON_THREAD_POOL_H_

// Ablation: distance-queue content policy (footnote 1). Option (2),
// object pairs only, is the paper's choice; option (1) additionally feeds
// node-pair max-distances, which warms the cutoff before any object pair
// is seen but tends to keep it looser afterwards.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Ablation: distance-queue policy (footnote 1)", env);

  const std::vector<uint64_t> ks = {10, 1000, 100000};
  const std::vector<int> widths = {10, 26, 26};
  PrintRow({"k", "objects-only (paper)", "all-pairs (maxdist)"}, widths);
  std::printf("(distance computations / queue insertions, B-KDJ)\n");
  for (uint64_t k : ks) {
    std::vector<std::string> row = {"k=" + FormatCount(k)};
    for (const auto policy : {core::DistanceQueuePolicy::kObjectPairsOnly,
                              core::DistanceQueuePolicy::kAllPairs}) {
      core::JoinOptions options = env.MakeJoinOptions();
      options.distance_queue_policy = policy;
      const RunResult run =
          RunKdjCold(env, core::KdjAlgorithm::kBKdj, k, options);
      row.push_back(FormatCount(run.stats.real_distance_computations) +
                    " / " + FormatCount(run.stats.main_queue_insertions));
    }
    PrintRow(row, widths);
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

#include "geom/sweep_geometry.h"

#include <algorithm>
#include <array>

namespace amdj::geom {

namespace {

/// Overlap length of [t, t + window] with [b_lo, b_hi].
double OverlapAt(double t, double window, double b_lo, double b_hi) {
  const double lo = std::max(t, b_lo);
  const double hi = std::min(t + window, b_hi);
  return std::max(0.0, hi - lo);
}

}  // namespace

double IntegrateWindowOverlap(double a_lo, double a_hi, double window,
                              double b_lo, double b_hi) {
  if (a_hi <= a_lo || b_hi < b_lo || window < 0) return 0.0;
  // Slope of the integrand changes only where an endpoint of the moving
  // window crosses an endpoint of [b_lo, b_hi].
  std::array<double, 6> cuts = {a_lo,        a_hi,        b_lo - window,
                                b_hi - window, b_lo,        b_hi};
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double t0 = std::max(cuts[i], a_lo);
    const double t1 = std::min(cuts[i + 1], a_hi);
    if (t1 <= t0) continue;
    // Linear on [t0, t1] -> trapezoid is exact.
    total += 0.5 * (OverlapAt(t0, window, b_lo, b_hi) +
                    OverlapAt(t1, window, b_lo, b_hi)) *
             (t1 - t0);
  }
  return total;
}

double SweepingIndexTerm(double a_lo, double a_hi, double window, double b_lo,
                         double b_hi) {
  const double a_len = a_hi - a_lo;
  const double b_len = b_hi - b_lo;
  if (a_len < 0 || window < 0) return 0.0;
  if (b_len > 0) {
    if (a_len == 0) {
      // Single anchor position: fraction of the target interval covered by
      // its window (the integral average degenerates to a point value).
      return OverlapAt(a_lo, window, b_lo, b_hi) / b_len;
    }
    return IntegrateWindowOverlap(a_lo, a_hi, window, b_lo, b_hi) /
           (a_len * b_len);
  }
  // Degenerate target interval: Overlap/|s| becomes the indicator
  // "b position inside [t, t + window]"; averaged over anchors it is the
  // measure of { t : b in [t, t + window] } within the anchor interval,
  // divided by the anchor length.
  if (a_len == 0) {
    return (b_lo >= a_lo && b_lo <= a_lo + window) ? 1.0 : 0.0;
  }
  const double lo = std::max(a_lo, b_lo - window);
  const double hi = std::min(a_hi, b_lo);
  return std::max(0.0, hi - lo) / a_len;
}

double SweepingIndex(const Rect& r, const Rect& s, double window, int axis) {
  const double r_lo = r.lo.Coord(axis);
  const double r_hi = r.hi.Coord(axis);
  const double s_lo = s.lo.Coord(axis);
  const double s_hi = s.hi.Coord(axis);
  return SweepingIndexTerm(r_lo, r_hi, window, s_lo, s_hi) +
         SweepingIndexTerm(s_lo, s_hi, window, r_lo, r_hi);
}

double SweepingIndexTermSeparated(double len_r, double len_s, double alpha,
                                  double window) {
  // r = [0, R], s = [R + alpha, R + alpha + S]; anchors sweep forward.
  // The unnormalized integral is divided by R at the end (see
  // SweepingIndexTerm for the normalization rationale).
  const double R = len_r;
  const double S = len_s;
  if (window <= alpha) return 0.0;
  if (R <= 0.0) {
    // Single anchor at 0; its window [0, window] overlaps s by
    // min(window, S + alpha) - alpha.
    if (S <= 0.0) return window >= alpha ? 1.0 : 0.0;
    return (std::min(window, S + alpha) - alpha) / S;
  }
  if (S <= 0.0) {
    // Indicator form: measure of t in [0, R] with s's position inside
    // [t, t + window]; position = R + alpha.
    const double lo = std::max(0.0, R + alpha - window);
    const double hi = std::min(R, R + alpha);
    return std::max(0.0, hi - lo) / R;
  }
  if (window <= R + alpha) {
    const double w = window - alpha;  // in (0, R]
    if (w <= S) return w * w / (2.0 * S) / R;
    return (w - S / 2.0) / R;
  }
  // window >= R + alpha: every anchor's window reaches s.
  const double a = window - R - alpha;  // >= 0
  const double b = window - alpha;      // = a + R
  if (b <= S) return (a + b) / (2.0 * S);
  if (a >= S) return 1.0;
  return (b - S / 2.0 - a * a / (2.0 * S)) / R;
}

SweepDirection ChooseSweepDirection(const Rect& r, const Rect& s, int axis) {
  std::array<double, 4> e = {r.lo.Coord(axis), r.hi.Coord(axis),
                             s.lo.Coord(axis), s.hi.Coord(axis)};
  std::sort(e.begin(), e.end());
  const double left = e[1] - e[0];
  const double right = e[3] - e[2];
  return left < right ? SweepDirection::kForward : SweepDirection::kBackward;
}

}  // namespace amdj::geom

# Empty dependencies file for rtree_delete_test.
# This may be replaced when dependencies are built.

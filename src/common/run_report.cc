#include "common/run_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <type_traits>

namespace amdj {

namespace {

std::string JsonNumber(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 ||
      v < -1.7976931348623157e308) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string FormatCell(double v) {
  char buf[32];
  if (v == 0.0) return "0";
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string FormatCell(uint64_t v) { return std::to_string(v); }

}  // namespace

void RunReport::SetMeta(const std::string& algorithm, uint64_t k) {
  algorithm_ = algorithm;
  k_ = k;
}

void RunReport::BeginPhase(const std::string& name, const JoinStats& stats) {
  if (finished_) return;
  if (phase_open_) EndPhase(stats);
  phase_open_ = true;
  open_name_ = name;
  open_begin_ = stats;
  open_start_ = std::chrono::steady_clock::now();
  queue_peak_ = 0;
}

void RunReport::EndPhase(const JoinStats& stats) {
  if (!phase_open_) return;
  Phase phase;
  phase.name = open_name_;
  phase.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - open_start_)
                           .count();
  phase.delta = SubtractJoinStats(stats, open_begin_);
  phase.queue_depth_peak = queue_peak_;
  phases_.push_back(std::move(phase));
  phase_open_ = false;
  queue_peak_ = 0;
}

void RunReport::OnCutoff(const char* label, double distance,
                         uint64_t pairs_so_far) {
  if (finished_) return;
  CutoffPoint point{label, distance, pairs_so_far};
  if (trajectory_.size() < kMaxTrajectory) {
    trajectory_.push_back(std::move(point));
  } else {
    // Keep the first kMaxTrajectory-1 points and the most recent one: the
    // last slot is overwritten so the final cutoff always survives, and
    // the drop count makes the truncation visible.
    ++trajectory_dropped_;
    trajectory_.back() = std::move(point);
  }
}

void RunReport::Finish(const JoinStats& stats) {
  if (phase_open_ && !finished_) EndPhase(stats);
  totals_ = stats;
  finished_ = true;
}

std::string RunReport::ToJson() const {
  std::string out = "{\"schema\":\"amdj-run-report-v1\"";
  out += ",\"algorithm\":" + JsonString(algorithm_);
  out += ",\"k\":" + std::to_string(k_);
  out += ",\"phases\":[";
  for (size_t i = 0; i < phases_.size(); ++i) {
    const Phase& p = phases_[i];
    if (i > 0) out += ',';
    out += "{\"name\":" + JsonString(p.name);
    out += ",\"wall_seconds\":" + JsonNumber(p.wall_seconds);
    out += ",\"queue_depth_peak\":" + std::to_string(p.queue_depth_peak);
    out += ",\"delta\":" + p.delta.ToJson();
    out += '}';
  }
  out += "],\"cutoff_trajectory\":[";
  for (size_t i = 0; i < trajectory_.size(); ++i) {
    const CutoffPoint& c = trajectory_[i];
    if (i > 0) out += ',';
    out += "{\"label\":" + JsonString(c.label);
    out += ",\"distance\":" + JsonNumber(c.distance);
    out += ",\"pairs_so_far\":" + std::to_string(c.pairs_so_far);
    out += '}';
  }
  out += "],\"cutoff_trajectory_dropped\":" +
         std::to_string(trajectory_dropped_);
  out += ",\"totals\":" + totals_.ToJson();
  out += '}';
  return out;
}

std::string RunReport::ToTable() const {
  // Column layout: counter name | one column per phase | totals.
  constexpr int kNameWidth = 31;
  constexpr int kCellWidth = 14;
  std::ostringstream os;
  os << "RunReport";
  if (!algorithm_.empty()) os << " [" << algorithm_ << " k=" << k_ << "]";
  os << "\n";

  const auto pad = [&os](const std::string& cell, int width) {
    os << cell;
    for (int i = static_cast<int>(cell.size()); i < width; ++i) os << ' ';
  };

  pad("phase", kNameWidth);
  for (const Phase& p : phases_) pad(p.name, kCellWidth);
  pad("total", kCellWidth);
  os << "\n";

  pad("wall_seconds", kNameWidth);
  double wall_total = 0.0;
  for (const Phase& p : phases_) {
    pad(FormatCell(p.wall_seconds), kCellWidth);
    wall_total += p.wall_seconds;
  }
  pad(FormatCell(wall_total), kCellWidth);
  os << "\n";

  pad("queue_depth_peak", kNameWidth);
  uint64_t peak_total = 0;
  for (const Phase& p : phases_) {
    pad(FormatCell(p.queue_depth_peak), kCellWidth);
    peak_total = std::max(peak_total, p.queue_depth_peak);
  }
  pad(FormatCell(peak_total), kCellWidth);
  os << "\n";

  // One row per counter, skipping rows that are zero everywhere. The
  // column cells come from walking every phase delta (and the totals) with
  // the same field visitor, so a new JoinStats counter appears here
  // automatically.
  std::vector<std::string> rows;
  std::vector<bool> nonzero;
  const auto collect = [&rows, &nonzero, kNameWidth, kCellWidth](
                           const JoinStats& stats, bool is_label_pass) {
    size_t i = 0;
    ForEachJoinStatsField(
        stats, [&](const char* name, const auto& field, StatFieldKind) {
          if (is_label_pass) {
            std::string row = name;
            row.resize(std::max<size_t>(row.size(), kNameWidth), ' ');
            rows.push_back(std::move(row));
            nonzero.push_back(false);
          } else {
            std::string cell = FormatCell(field);
            cell.resize(std::max<size_t>(cell.size(), kCellWidth), ' ');
            rows[i] += cell;
            if (field != std::decay_t<decltype(field)>{}) nonzero[i] = true;
          }
          ++i;
        });
  };
  collect(totals_, /*is_label_pass=*/true);
  for (const Phase& p : phases_) collect(p.delta, false);
  collect(totals_, false);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!nonzero[i]) continue;
    // Trim trailing padding of the last cell.
    std::string& row = rows[i];
    while (!row.empty() && row.back() == ' ') row.pop_back();
    os << row << "\n";
  }

  if (!trajectory_.empty()) {
    os << "cutoff trajectory (distance @ pairs):\n";
    for (const CutoffPoint& c : trajectory_) {
      os << "  " << std::left;
      pad(c.label, kNameWidth - 2);
      os << FormatCell(c.distance) << " @ " << c.pairs_so_far << "\n";
    }
    if (trajectory_dropped_ > 0) {
      os << "  (" << trajectory_dropped_
         << " intermediate points dropped)\n";
    }
  }
  return os.str();
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open report output file: " + path);
  }
  const std::string json = ToJson() + "\n";
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to report output file: " + path);
  }
  return Status::OK();
}

}  // namespace amdj

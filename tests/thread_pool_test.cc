#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace amdj {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExecutesOnMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> peak{0};
  std::atomic<int> active{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] {
      const int now = ++active;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      ++started;
      // Hold the slot briefly so tasks overlap.
      while (started.load() < 4 && active.load() < 2) {
        std::this_thread::yield();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --active;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(started.load(), 16);
  EXPECT_GE(peak.load(), 2);  // genuinely concurrent
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      });
    }
    // Destructor must wait for all 64, not drop the queued tail.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, SingleThreadPoolIsSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // FIFO on one worker: no data race, in order
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

}  // namespace
}  // namespace amdj

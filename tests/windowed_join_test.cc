// Windowed joins: JoinOptions::r_window / s_window restrict which objects
// participate; subtrees outside a window are pruned during expansion.

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using geom::Rect;

std::vector<double> BruteWindowed(const std::vector<Rect>& r,
                                  const std::vector<Rect>& s,
                                  const std::optional<Rect>& rw,
                                  const std::optional<Rect>& sw) {
  std::vector<double> d;
  for (const auto& a : r) {
    if (rw && !a.Intersects(*rw)) continue;
    for (const auto& b : s) {
      if (sw && !b.Intersects(*sw)) continue;
      d.push_back(geom::MinDistance(a, b));
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

class WindowedJoinTest : public ::testing::TestWithParam<KdjAlgorithm> {};

TEST_P(WindowedJoinTest, BothWindowsMatchBruteForce) {
  const Rect uni(0, 0, 10000, 10000);
  test::JoinFixture f =
      test::MakeFixture(workload::GaussianClusters(300, 6, 0.06, 121, uni),
                        workload::UniformRects(250, 40.0, 122, uni), 8);
  const Rect rw(1000, 1000, 7000, 7000);
  const Rect sw(3000, 0, 10000, 6000);
  const auto brute = BruteWindowed(f.r_objects, f.s_objects, rw, sw);
  JoinOptions options;
  options.r_window = rw;
  options.s_window = sw;
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 300, GetParam(), options, nullptr);
  ASSERT_TRUE(result.ok()) << ToString(GetParam());
  const size_t expected = std::min<size_t>(300, brute.size());
  ASSERT_EQ(result->size(), expected);
  for (size_t i = 0; i < result->size(); ++i) {
    ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9) << "rank " << i;
    // Every reported object really intersects its window.
    EXPECT_TRUE(f.r_objects[(*result)[i].r_id].Intersects(rw));
    EXPECT_TRUE(f.s_objects[(*result)[i].s_id].Intersects(sw));
  }
}

TEST_P(WindowedJoinTest, OneSidedWindow) {
  const Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f =
      test::MakeFixture(workload::UniformPoints(200, 123, uni),
                        workload::UniformPoints(150, 124, uni), 8);
  const Rect rw(0, 0, 1000, 1000);
  const auto brute =
      BruteWindowed(f.r_objects, f.s_objects, rw, std::nullopt);
  JoinOptions options;
  options.r_window = rw;
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 200, GetParam(), options, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), std::min<size_t>(200, brute.size()));
  for (size_t i = 0; i < result->size(); ++i) {
    ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

TEST_P(WindowedJoinTest, DisjointWindowYieldsNothing) {
  const Rect uni(0, 0, 1000, 1000);
  test::JoinFixture f =
      test::MakeFixture(workload::UniformPoints(100, 125, uni),
                        workload::UniformPoints(100, 126, uni), 8);
  JoinOptions options;
  options.r_window = Rect(5000, 5000, 6000, 6000);  // outside the universe
  auto result =
      RunKDistanceJoin(*f.r, *f.s, 50, GetParam(), options, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

INSTANTIATE_TEST_SUITE_P(AllKdj, WindowedJoinTest,
                         ::testing::Values(KdjAlgorithm::kHsKdj,
                                           KdjAlgorithm::kBKdj,
                                           KdjAlgorithm::kAmKdj,
                                           KdjAlgorithm::kSjSort),
                         [](const auto& info) {
                           std::string n = ToString(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(WindowedJoinTest, IncrementalCursorsHonorWindows) {
  const Rect uni(0, 0, 5000, 5000);
  test::JoinFixture f =
      test::MakeFixture(workload::GaussianClusters(150, 4, 0.06, 127, uni),
                        workload::UniformRects(120, 30.0, 128, uni), 8);
  const Rect rw(500, 500, 4000, 4000);
  const auto brute =
      BruteWindowed(f.r_objects, f.s_objects, rw, std::nullopt);
  JoinOptions options;
  options.r_window = rw;
  options.idj_initial_k = 32;
  for (const auto algorithm :
       {IdjAlgorithm::kHsIdj, IdjAlgorithm::kAmIdj}) {
    auto cursor =
        OpenIncrementalJoin(*f.r, *f.s, algorithm, options, nullptr);
    ASSERT_TRUE(cursor.ok());
    ResultPair p;
    bool done = false;
    const size_t limit = std::min<size_t>(500, brute.size());
    for (size_t i = 0; i < limit; ++i) {
      ASSERT_TRUE((*cursor)->Next(&p, &done).ok());
      ASSERT_FALSE(done) << ToString(algorithm) << " at " << i;
      ASSERT_NEAR(p.distance, brute[i], 1e-9)
          << ToString(algorithm) << " rank " << i;
    }
  }
}

// Window pruning actually skips work, not just filters results.
TEST(WindowedJoinTest, WindowReducesNodeAccesses) {
  const Rect uni(0, 0, 50000, 50000);
  test::JoinFixture f = test::MakeFixture(
      workload::TigerStreets({.street_segments = 5000, .seed = 129}),
      workload::TigerHydro({.hydro_objects = 1500, .seed = 129}), 32, 512);
  JoinOptions unrestricted;
  JoinStats full_stats;
  ASSERT_TRUE(RunKDistanceJoin(*f.r, *f.s, 500, KdjAlgorithm::kBKdj,
                               unrestricted, &full_stats)
                  .ok());
  JoinOptions windowed = unrestricted;
  windowed.r_window = Rect(0, 0, 200000, 200000);
  windowed.s_window = windowed.r_window;
  // Window covers ~1/25 of the universe: far fewer distance computations.
  JoinStats window_stats;
  ASSERT_TRUE(RunKDistanceJoin(*f.r, *f.s, 500, KdjAlgorithm::kBKdj,
                               windowed, &window_stats)
                  .ok());
  EXPECT_LT(window_stats.real_distance_computations,
            full_stats.real_distance_computations);
}

}  // namespace
}  // namespace amdj::core

#include "rtree/str_bulk_loader.h"

#include <algorithm>
#include <cmath>

#include "rtree/node.h"
#include "rtree/rtree.h"

namespace amdj::rtree {

Status StrBulkLoader::Load(std::vector<Entry> objects, double fill) {
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  const uint32_t capacity = std::max<uint32_t>(
      2, static_cast<uint32_t>(tree_->options_.max_entries * fill));

  tree_->size_ = objects.size();
  tree_->node_count_ = 0;
  tree_->bounds_ = geom::Rect::Empty();
  for (const Entry& e : objects) tree_->bounds_.Extend(e.rect);

  if (objects.empty()) {
    Node root;
    root.level = 0;
    auto id = tree_->AllocNode(root);
    if (!id.ok()) return id.status();
    tree_->root_ = *id;
    tree_->height_ = 1;
    tree_->node_count_ = 1;
    return Status::OK();
  }

  std::vector<Entry> level_entries = std::move(objects);
  uint16_t level = 0;
  while (true) {
    const size_t n = level_entries.size();
    if (n <= capacity) {
      // This level fits into a single node: the root.
      Node root;
      root.level = level;
      root.entries = std::move(level_entries);
      auto id = tree_->AllocNode(root);
      if (!id.ok()) return id.status();
      ++tree_->node_count_;
      tree_->root_ = *id;
      tree_->height_ = static_cast<uint16_t>(level + 1);
      return Status::OK();
    }

    // Tile: sort by x-center into ceil(sqrt(P)) slabs, then pack each slab
    // in y order.
    const size_t num_nodes = (n + capacity - 1) / capacity;
    const size_t num_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    const size_t slab_size =
        ((num_nodes + num_slabs - 1) / num_slabs) * capacity;

    std::sort(level_entries.begin(), level_entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.rect.Center().x < b.rect.Center().x;
              });

    std::vector<Entry> next_level;
    next_level.reserve(num_nodes);
    for (size_t slab_begin = 0; slab_begin < n; slab_begin += slab_size) {
      const size_t slab_end = std::min(n, slab_begin + slab_size);
      std::sort(level_entries.begin() + slab_begin,
                level_entries.begin() + slab_end,
                [](const Entry& a, const Entry& b) {
                  return a.rect.Center().y < b.rect.Center().y;
                });
      for (size_t i = slab_begin; i < slab_end; i += capacity) {
        const size_t end = std::min(slab_end, i + capacity);
        Node node;
        node.level = level;
        node.entries.assign(level_entries.begin() + i,
                            level_entries.begin() + end);
        auto id = tree_->AllocNode(node);
        if (!id.ok()) return id.status();
        ++tree_->node_count_;
        next_level.emplace_back(node.ComputeMbr(), *id);
      }
    }
    level_entries = std::move(next_level);
    ++level;
  }
}

}  // namespace amdj::rtree

#ifndef AMDJ_GEOM_UNITS_H_
#define AMDJ_GEOM_UNITS_H_

#include <limits>
#include <type_traits>

/// \file
/// Strong unit types for the two scalar spaces of the join pipeline.
///
/// Since the key-space migration (PR 2) every hot-path comparison runs on
/// metric *keys* (the squared distance under L2) while user-facing cutoffs
/// and emitted pairs carry true *distances*. Both used to be raw `double`,
/// so the Eq. 3-5 cutoff/estimator invariants were guarded only by a
/// naming convention and a regex lint. KeyVal and DistVal push that
/// discipline into the type system: a key/distance mix-up is now a compile
/// error, not a silently wrong join (see tests/unit_safety_compile).
///
/// Rules of the road:
///   - Cross-unit conversion goes through geom::DistanceToKey /
///     geom::KeyToDistance / geom::DistanceToKeyCutoff (geom/metric.h)
///     and nothing else.
///   - Comparisons, min/max, and equality exist only within one unit.
///     There is no arithmetic: unit-space math (Eq. 3-5, gap squaring)
///     happens in raw doubles at a documented raw-view boundary and is
///     wrapped on the way out.
///   - The raw view (`raw()` + the explicit constructor) is the escape
///     hatch for the SoA SIMD kernels, serialization (queue spill pages,
///     JSON/trace exposition, CLI parsing), and printf-style logging.
///     Every such site is a greppable `raw()`/`KeyVal(`/`DistVal(` token;
///     scripts/check_key_space.py audits the residue.
///
/// Both wrappers are zero-overhead: trivially copyable, same size and
/// representation as double (static_asserts below), constexpr throughout.
/// `std::atomic<KeyVal>` is lock-free on every 64-bit target exactly like
/// `std::atomic<double>` (8-byte trivially copyable payload).

namespace amdj::geom {

/// A metric-key-space scalar: the priority the main queue orders by and
/// every internal cutoff is expressed in. Under L2 the key is the squared
/// distance (strictly monotone in it); under L1/LInf key == distance, but
/// the *type* stays distinct so code cannot quietly bake in that
/// coincidence.
class KeyVal {
 public:
  constexpr KeyVal() = default;
  /// Raw-view escape hatch (see file comment). Deliberately explicit:
  /// an implicit double->KeyVal conversion is exactly the bug class this
  /// type exists to kill.
  constexpr explicit KeyVal(double raw) : v_(raw) {}

  /// Raw-view escape hatch: the untyped value, for kernels, spill pages,
  /// exposition, and unit-space arithmetic.
  constexpr double raw() const { return v_; }

  static constexpr KeyVal Zero() { return KeyVal(0.0); }
  static constexpr KeyVal Infinity() {
    return KeyVal(std::numeric_limits<double>::infinity());
  }
  static constexpr KeyVal NegativeInfinity() {
    return KeyVal(-std::numeric_limits<double>::infinity());
  }

  friend constexpr bool operator<(KeyVal a, KeyVal b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(KeyVal a, KeyVal b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(KeyVal a, KeyVal b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>=(KeyVal a, KeyVal b) {
    return a.v_ >= b.v_;
  }
  friend constexpr bool operator==(KeyVal a, KeyVal b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(KeyVal a, KeyVal b) {
    return a.v_ != b.v_;
  }

 private:
  double v_ = 0.0;
};

/// A distance-space scalar: what the user asks in (epsilon cutoffs, eDmax
/// seeds/forcing) and what emitted pairs report. One KeyToDistance per
/// emitted pair converts from key space at the API boundary.
class DistVal {
 public:
  constexpr DistVal() = default;
  /// Raw-view escape hatch (see file comment); explicit on purpose.
  constexpr explicit DistVal(double raw) : v_(raw) {}

  /// Raw-view escape hatch: the untyped value, for user-facing output,
  /// estimator arithmetic, and exposition.
  constexpr double raw() const { return v_; }

  static constexpr DistVal Zero() { return DistVal(0.0); }
  static constexpr DistVal Infinity() {
    return DistVal(std::numeric_limits<double>::infinity());
  }

  friend constexpr bool operator<(DistVal a, DistVal b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator>(DistVal a, DistVal b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator<=(DistVal a, DistVal b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>=(DistVal a, DistVal b) {
    return a.v_ >= b.v_;
  }
  friend constexpr bool operator==(DistVal a, DistVal b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(DistVal a, DistVal b) {
    return a.v_ != b.v_;
  }

 private:
  double v_ = 0.0;
};

// The zero-overhead contract: both wrappers are bit-compatible with the
// double they wrap, so spill pages, SoA views, and atomics see the exact
// representation the raw-double pipeline produced.
static_assert(sizeof(KeyVal) == sizeof(double));
static_assert(sizeof(DistVal) == sizeof(double));
static_assert(alignof(KeyVal) == alignof(double));
static_assert(alignof(DistVal) == alignof(double));
static_assert(std::is_trivially_copyable_v<KeyVal>);
static_assert(std::is_trivially_copyable_v<DistVal>);
static_assert(std::is_standard_layout_v<KeyVal>);
static_assert(std::is_standard_layout_v<DistVal>);

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_UNITS_H_

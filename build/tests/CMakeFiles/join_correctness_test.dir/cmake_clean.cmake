file(REMOVE_RECURSE
  "CMakeFiles/join_correctness_test.dir/join_correctness_test.cc.o"
  "CMakeFiles/join_correctness_test.dir/join_correctness_test.cc.o.d"
  "join_correctness_test"
  "join_correctness_test.pdb"
  "join_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/segment_file_test.dir/segment_file_test.cc.o"
  "CMakeFiles/segment_file_test.dir/segment_file_test.cc.o.d"
  "segment_file_test"
  "segment_file_test.pdb"
  "segment_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

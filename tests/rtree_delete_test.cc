#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::rtree {
namespace {

using geom::Rect;

class RTreeDeleteTest : public ::testing::Test {
 protected:
  RTreeDeleteTest() : pool_(&disk_, 256) {}

  std::unique_ptr<RTree> MakeTree(uint32_t fanout = 8) {
    RTree::Options opts;
    opts.max_entries = fanout;
    return std::move(*RTree::Create(&pool_, opts));
  }

  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
};

TEST_F(RTreeDeleteTest, DeleteMissingObjectReportsNotFound) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Rect(1, 1, 2, 2), 7).ok());
  bool found = true;
  ASSERT_TRUE(tree->Delete(Rect(5, 5, 6, 6), 7, &found).ok());
  EXPECT_FALSE(found);
  // Same rect, wrong id.
  ASSERT_TRUE(tree->Delete(Rect(1, 1, 2, 2), 8, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_EQ(tree->size(), 1u);
}

TEST_F(RTreeDeleteTest, InsertDeleteRoundTrip) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Rect(1, 1, 2, 2), 7).ok());
  bool found = false;
  ASSERT_TRUE(tree->Delete(Rect(1, 1, 2, 2), 7, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->Validate().ok());
  auto hits = tree->RangeQuery(Rect(0, 0, 10, 10));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(RTreeDeleteTest, DeleteHalfOfDeepTreeKeepsInvariants) {
  auto tree = MakeTree(8);
  const auto data =
      workload::UniformRects(1500, 10.0, 31, Rect(0, 0, 1000, 1000));
  const auto entries = data.ToEntries();
  for (const auto& e : entries) ASSERT_TRUE(tree->Insert(e.rect, e.id).ok());
  ASSERT_GE(tree->height(), 3u);

  Random rng(5);
  std::vector<uint32_t> order(entries.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  std::set<uint32_t> deleted;
  for (size_t i = 0; i < entries.size() / 2; ++i) {
    const uint32_t id = order[i];
    bool found = false;
    ASSERT_TRUE(tree->Delete(entries[id].rect, id, &found).ok());
    ASSERT_TRUE(found) << "id " << id;
    deleted.insert(id);
    if (i % 100 == 0) {
      ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
    }
  }
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  EXPECT_EQ(tree->size(), entries.size() - deleted.size());

  // Every survivor is still reachable, every deleted object is gone.
  std::set<uint32_t> remaining;
  ASSERT_TRUE(
      tree->ForEachObject([&](const Entry& e) { remaining.insert(e.id); })
          .ok());
  EXPECT_EQ(remaining.size(), entries.size() - deleted.size());
  for (uint32_t id : deleted) EXPECT_EQ(remaining.count(id), 0u);
}

TEST_F(RTreeDeleteTest, DeleteEverythingShrinksToEmptyRoot) {
  auto tree = MakeTree(6);
  const auto data =
      workload::UniformPoints(300, 32, Rect(0, 0, 100, 100));
  const auto entries = data.ToEntries();
  for (const auto& e : entries) ASSERT_TRUE(tree->Insert(e.rect, e.id).ok());
  const uint64_t peak_nodes = tree->node_count();
  for (const auto& e : entries) {
    bool found = false;
    ASSERT_TRUE(tree->Delete(e.rect, e.id, &found).ok());
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->node_count(), 1u);
  EXPECT_LT(tree->node_count(), peak_nodes);
  EXPECT_TRUE(tree->Validate().ok());
  // The tree is fully reusable afterwards.
  ASSERT_TRUE(tree->Insert(Rect(5, 5, 6, 6), 999).ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST_F(RTreeDeleteTest, FreedPagesAreReusedSafely) {
  // Regression guard for the stale-buffer-frame hazard: delete enough to
  // dissolve nodes, then insert enough to reuse the freed page ids; the
  // tree must stay structurally valid and queryable.
  auto tree = MakeTree(6);
  const auto first =
      workload::UniformPoints(400, 33, Rect(0, 0, 100, 100)).ToEntries();
  for (const auto& e : first) ASSERT_TRUE(tree->Insert(e.rect, e.id).ok());
  for (size_t i = 0; i < 300; ++i) {
    bool found = false;
    ASSERT_TRUE(tree->Delete(first[i].rect, first[i].id, &found).ok());
    ASSERT_TRUE(found);
  }
  const auto second =
      workload::UniformPoints(400, 34, Rect(200, 200, 300, 300)).ToEntries();
  for (const auto& e : second) {
    ASSERT_TRUE(tree->Insert(e.rect, e.id + 1000).ok());
  }
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  auto hits = tree->RangeQuery(Rect(200, 200, 300, 300));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 400u);
}

TEST_F(RTreeDeleteTest, DeleteFromBulkLoadedTree) {
  auto tree = MakeTree(16);
  const auto data =
      workload::UniformRects(2000, 5.0, 35, Rect(0, 0, 1000, 1000));
  const auto entries = data.ToEntries();
  ASSERT_TRUE(tree->BulkLoad(entries).ok());
  for (uint32_t id = 0; id < 500; ++id) {
    bool found = false;
    ASSERT_TRUE(tree->Delete(entries[id].rect, id, &found).ok());
    ASSERT_TRUE(found);
  }
  EXPECT_EQ(tree->size(), 1500u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

TEST_F(RTreeDeleteTest, DuplicateRectsDeleteOneAtATime) {
  auto tree = MakeTree(6);
  const Rect r(5, 5, 6, 6);
  for (uint32_t i = 0; i < 50; ++i) ASSERT_TRUE(tree->Insert(r, i).ok());
  bool found = false;
  ASSERT_TRUE(tree->Delete(r, 25, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(tree->size(), 49u);
  // Deleting the same id again fails; all others remain.
  ASSERT_TRUE(tree->Delete(r, 25, &found).ok());
  EXPECT_FALSE(found);
  std::set<uint32_t> ids;
  ASSERT_TRUE(
      tree->ForEachObject([&](const Entry& e) { ids.insert(e.id); }).ok());
  EXPECT_EQ(ids.size(), 49u);
  EXPECT_EQ(ids.count(25), 0u);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST_F(RTreeDeleteTest, BoundsShrinkAfterDeletingExtremes) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(Rect(0, 0, 1, 1), 0).ok());
  ASSERT_TRUE(tree->Insert(Rect(10, 10, 11, 11), 1).ok());
  ASSERT_TRUE(tree->Insert(Rect(100, 100, 101, 101), 2).ok());
  bool found = false;
  ASSERT_TRUE(tree->Delete(Rect(100, 100, 101, 101), 2, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(tree->bounds(), Rect(0, 0, 11, 11));
}

}  // namespace
}  // namespace amdj::rtree

#ifndef AMDJ_QUEUE_DISTANCE_QUEUE_H_
#define AMDJ_QUEUE_DISTANCE_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "geom/units.h"

namespace amdj::queue {

/// The paper's *distance queue* (Section 2.1): a max-heap holding the k
/// smallest object-pair priorities seen so far. Its maximum is the pruning
/// cutoff qDmax; until k values have been collected the cutoff is
/// +infinity.
///
/// Since the key-space migration (PR 2) the values are metric *keys*
/// (geom::KeyVal — squared distances under L2), not true distances; the
/// key is monotone in the distance, so the k-th smallest key is exactly
/// the key of the k-th smallest distance. The strong type makes feeding a
/// distance-space value into the cutoff a compile error.
///
/// Following the paper's footnote 1, only *object* pair keys are inserted
/// (node pairs would have to contribute their max-distance key, which
/// rarely lowers the cutoff). An ablation bench flips this policy.
class DistanceQueue {
 public:
  /// `k` must be >= 1. `stats` (optional) receives insertion counts.
  explicit DistanceQueue(size_t k, JoinStats* stats = nullptr);

  /// Offers a key; keeps only the k smallest.
  void Insert(geom::KeyVal key);

  /// Current pruning cutoff qDmax as a key: the k-th smallest key seen, or
  /// +infinity while fewer than k keys have been inserted.
  geom::KeyVal CutoffKey() const {
    return heap_.size() < k_ ? geom::KeyVal::Infinity() : heap_.front();
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

 private:
  size_t k_;
  JoinStats* stats_;
  // max-heap via std::push_heap default order (KeyVal::operator<)
  std::vector<geom::KeyVal> heap_;
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_DISTANCE_QUEUE_H_

#include "core/sj_sort.h"

#include "spatialjoin/external_sorter.h"
#include "spatialjoin/spatial_join.h"

namespace amdj::core {

StatusOr<std::vector<ResultPair>> SjSort::Run(const rtree::RTree& r,
                                              const rtree::RTree& s,
                                              uint64_t k, double dmax,
                                              const JoinOptions& options,
                                              JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;

  spatialjoin::ExternalSorter sorter(options.queue_disk,
                                     options.queue_memory_bytes, stats);
  AMDJ_RETURN_IF_ERROR(spatialjoin::SpatialJoin::Within(
      r, s, dmax, options, stats,
      [&](const ResultPair& pair) -> Status {
        ++stats->main_queue_insertions;
        return sorter.Add(pair);
      }));
  AMDJ_RETURN_IF_ERROR(sorter.Finish());

  results.reserve(k);
  ResultPair rec;
  bool done = false;
  while (results.size() < k) {
    AMDJ_RETURN_IF_ERROR(sorter.Next(&rec, &done));
    if (done) break;
    results.push_back(rec);
    ++stats->pairs_produced;
  }
  return results;
}

}  // namespace amdj::core

#ifndef AMDJ_STORAGE_BUFFER_POOL_H_
#define AMDJ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/trace.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/query_context.h"

namespace amdj::storage {

class BufferPool;

/// RAII pin on a buffered page. Unpins (and marks dirty if requested) on
/// destruction. Move-only.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId page_id, char* data);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  /// True if this guard holds a page.
  bool Valid() const { return pool_ != nullptr; }

  PageId page_id() const { return page_id_; }
  const char* data() const { return data_; }

  /// Mutable access; marks the page dirty.
  char* MutableData() {
    dirty_ = true;
    return data_;
  }

  /// Explicitly releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Fixed-capacity LRU page cache over a DiskManager.
///
/// The R-tree buffer of the paper's experiments is an instance of this class
/// with capacity = bytes / 4 KB. Buffer hits/misses and logical accesses are
/// accumulated into an optional JoinStats sink so each join run can report
/// the paper's Table 2 numbers.
///
/// Thread-safety: all operations are internally locked, so concurrent
/// read-only queries may share one pool (frame payloads are stable while
/// pinned).
///
/// Stats attribution: each access is counted against the calling thread's
/// QueryAttributionScope (storage/query_context.h) when one is active —
/// concurrent queries over one shared pool each keep exact per-query
/// node-access / hit-ratio accounting, which is what the JoinService
/// relies on. Threads outside any scope fall back to the pool-wide sink
/// set by SetStatsSink (single-query tools and benches). The pool-global
/// hit_count()/miss_count() totals always accumulate, so per-query sums
/// can be reconciled against them.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 1. Does not take ownership of `disk`.
  BufferPool(DiskManager* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Directs per-access counters (node_accesses, node_buffer_hits,
  /// node_disk_reads) into `stats`; pass nullptr to detach. This is the
  /// pool-wide fallback sink — an active QueryAttributionScope on the
  /// accessing thread shadows it (see the class comment).
  void SetStatsSink(JoinStats* stats) AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    stats_ = stats;
  }

  /// Attaches a tracer that receives a "buffer_hit_ratio" counter sample
  /// once per kTraceWindow accesses (the windowed hit fraction, 0..1);
  /// pass nullptr to detach. Pool-wide fallback like SetStatsSink; an
  /// active QueryAttributionScope supplies its own tracer and window.
  void SetTracer(Tracer* tracer) AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    tracer_ = tracer;
    window_accesses_ = 0;
    window_hits_ = 0;
  }

  /// Accesses per buffer_hit_ratio counter sample (see SetTracer).
  static constexpr uint64_t kTraceWindow = 1024;

  /// Fetches (pinning) an existing page.
  StatusOr<PageGuard> FetchPage(PageId page_id) AMDJ_EXCLUDES(mutex_);

  /// Allocates a fresh zeroed page and pins it. On success `*page_id` holds
  /// the new id.
  StatusOr<PageGuard> NewPage(PageId* page_id) AMDJ_EXCLUDES(mutex_);

  /// Unpins a page previously pinned by FetchPage/NewPage. Called by
  /// PageGuard; rarely needed directly.
  void UnpinPage(PageId page_id, bool dirty) AMDJ_EXCLUDES(mutex_);

  /// Drops a cached page *without* writing it back — for pages whose
  /// contents are dead (about to be freed). Required before
  /// DiskManager::FreePage of a page that may be cached: otherwise a later
  /// reuse of the page id would alias a stale frame. No-op when the page
  /// is not cached; fails if it is pinned.
  Status Discard(PageId page_id) AMDJ_EXCLUDES(mutex_);

  /// Writes back all dirty pages.
  Status FlushAll() AMDJ_EXCLUDES(mutex_);

  /// Drops every unpinned page (flushing dirty ones). Returns non-OK if any
  /// page is still pinned or a flush fails.
  Status Clear() AMDJ_EXCLUDES(mutex_);

  /// The backing disk manager (for page allocation bookkeeping by owners
  /// of pooled structures, e.g. freeing R-tree nodes).
  DiskManager* disk() const { return disk_; }

  size_t capacity_pages() const { return capacity_; }

  /// Number of distinct pages currently cached.
  size_t cached_pages() const AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return table_.size();
  }

  uint64_t hit_count() const AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return hits_;
  }
  uint64_t miss_count() const AMDJ_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return misses_;
  }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  /// Returns a free frame index, evicting the LRU unpinned page if needed;
  /// -1 if every frame is pinned.
  int FindVictim(Status* status) AMDJ_REQUIRES(mutex_);
  void TouchLru(size_t frame_idx) AMDJ_REQUIRES(mutex_);

  DiskManager* disk_;
  size_t capacity_;
  mutable Mutex mutex_;
  /// Frame payloads (Frame::data contents) are stable while pinned — the
  /// guarded state is the frame *metadata* and the pool's maps/lists.
  std::vector<Frame> frames_ AMDJ_GUARDED_BY(mutex_);
  std::unordered_map<PageId, size_t> table_
      AMDJ_GUARDED_BY(mutex_);  // page id -> frame index
  std::list<size_t> lru_ AMDJ_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      AMDJ_GUARDED_BY(mutex_);
  std::vector<size_t> free_frames_ AMDJ_GUARDED_BY(mutex_);
  /// The sink object is also written under mutex_ (pointer and pointee):
  /// threads of one query serialize their counter bumps on this lock.
  JoinStats* stats_ AMDJ_GUARDED_BY(mutex_) AMDJ_PT_GUARDED_BY(mutex_) =
      nullptr;
  uint64_t hits_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ AMDJ_GUARDED_BY(mutex_) = 0;
  Tracer* tracer_ AMDJ_GUARDED_BY(mutex_) = nullptr;
  /// Accesses in the current trace window.
  uint64_t window_accesses_ AMDJ_GUARDED_BY(mutex_) = 0;
  /// Hits in the current trace window.
  uint64_t window_hits_ AMDJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace amdj::storage

#endif  // AMDJ_STORAGE_BUFFER_POOL_H_

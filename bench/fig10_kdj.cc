// Figure 10: performance of k-distance joins. Reproduces all three panels
// as one table per metric — (a) number of distance computations, (b) number
// of queue insertions, (c) response time (CPU + simulated 1999-disk I/O) —
// for HS-KDJ, B-KDJ, AM-KDJ and SJ-SORT with k from 10 to 100,000.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Figure 10: k-distance join performance", env);

  const std::vector<uint64_t> ks = {10, 100, 1000, 10000, 100000};
  const std::vector<core::KdjAlgorithm> algorithms = {
      core::KdjAlgorithm::kHsKdj, core::KdjAlgorithm::kBKdj,
      core::KdjAlgorithm::kAmKdj, core::KdjAlgorithm::kSjSort};

  struct Cell {
    JoinStats stats;
  };
  std::vector<std::vector<Cell>> grid(algorithms.size(),
                                      std::vector<Cell>(ks.size()));
  for (size_t ai = 0; ai < algorithms.size(); ++ai) {
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      RunResult run = RunKdjCold(env, algorithms[ai], ks[ki],
                                 env.MakeJoinOptions());
      grid[ai][ki].stats = run.stats;
    }
  }

  const std::vector<int> widths = {10, 14, 14, 14, 14, 14};
  auto print_metric = [&](const char* title,
                          const std::function<std::string(const JoinStats&)>&
                              fmt) {
    std::printf("## %s\n", title);
    std::vector<std::string> header = {"algorithm"};
    for (uint64_t k : ks) header.push_back("k=" + FormatCount(k));
    PrintRow(header, widths);
    for (size_t ai = 0; ai < algorithms.size(); ++ai) {
      std::vector<std::string> row = {core::ToString(algorithms[ai])};
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        row.push_back(fmt(grid[ai][ki].stats));
      }
      PrintRow(row, widths);
    }
    std::printf("\n");
  };

  print_metric("(a) number of distance computations",
               [](const JoinStats& s) {
                 return FormatCount(s.real_distance_computations);
               });
  print_metric("(b) number of queue insertions", [](const JoinStats& s) {
    return FormatCount(s.main_queue_insertions);
  });
  print_metric("(c) response time (seconds, CPU + simulated I/O)",
               [](const JoinStats& s) {
                 return FormatSeconds(s.response_seconds());
               });
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

// Configure-time probe (see the AMDJ_NO_AVX2_FALLBACK_OK check): compiles
// the kernel dispatch layer with -mno-avx2 and without the AVX2 backend to
// prove the scalar/SSE2 fallback still builds for CPUs without AVX2.

#include "../src/geom/kernels.cc"  // NOLINT

int main() {
  double lo[4] = {0, 1, 2, 3};
  double out[4];
  amdj::geom::BatchAxisDistance(lo, 0.5, 4, out);
  return out[0] == 0.0 ? 0 : 1;
}

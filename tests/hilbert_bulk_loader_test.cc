#include "rtree/hilbert_bulk_loader.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/generators.h"

namespace amdj::rtree {
namespace {

using geom::Rect;

TEST(HilbertIndexTest, FirstOrderCurve) {
  // Order 1: the four quadrants in curve order (0,0)->(0,1)->(1,1)->(1,0).
  EXPECT_EQ(HilbertBulkLoader::HilbertIndex(1, 0, 0), 0u);
  EXPECT_EQ(HilbertBulkLoader::HilbertIndex(1, 0, 1), 1u);
  EXPECT_EQ(HilbertBulkLoader::HilbertIndex(1, 1, 1), 2u);
  EXPECT_EQ(HilbertBulkLoader::HilbertIndex(1, 1, 0), 3u);
}

TEST(HilbertIndexTest, IsABijectionOnSmallGrid) {
  constexpr uint32_t kOrder = 4;  // 16 x 16
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint64_t d = HilbertBulkLoader::HilbertIndex(kOrder, x, y);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second) << "collision at " << x << "," << y;
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(HilbertIndexTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: successive cells along the
  // curve are orthogonal neighbors.
  constexpr uint32_t kOrder = 5;  // 32 x 32
  std::vector<std::pair<uint32_t, uint32_t>> by_index(32 * 32);
  for (uint32_t x = 0; x < 32; ++x) {
    for (uint32_t y = 0; y < 32; ++y) {
      by_index[HilbertBulkLoader::HilbertIndex(kOrder, x, y)] = {x, y};
    }
  }
  for (size_t i = 1; i < by_index.size(); ++i) {
    const auto [x0, y0] = by_index[i - 1];
    const auto [x1, y1] = by_index[i];
    const uint32_t manhattan = (x0 > x1 ? x0 - x1 : x1 - x0) +
                               (y0 > y1 ? y0 - y1 : y1 - y0);
    ASSERT_EQ(manhattan, 1u) << "jump at curve position " << i;
  }
}

class HilbertLoadTest : public ::testing::Test {
 protected:
  HilbertLoadTest() : pool_(&disk_, 512) {}
  storage::InMemoryDiskManager disk_;
  storage::BufferPool pool_;
};

TEST_F(HilbertLoadTest, LoadedTreeIsValidAndComplete) {
  RTree::Options opts;
  opts.max_entries = 16;
  auto tree = RTree::Create(&pool_, opts).value();
  const auto data = workload::GaussianClusters(
      3000, 6, 0.05, 81, Rect(0, 0, 10000, 10000));
  ASSERT_TRUE(tree->BulkLoadHilbert(data.ToEntries()).ok());
  EXPECT_EQ(tree->size(), 3000u);
  ASSERT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
  std::set<uint32_t> ids;
  ASSERT_TRUE(
      tree->ForEachObject([&](const Entry& e) { ids.insert(e.id); }).ok());
  EXPECT_EQ(ids.size(), 3000u);
}

TEST_F(HilbertLoadTest, RangeQueriesMatchBruteForce) {
  RTree::Options opts;
  opts.max_entries = 12;
  auto tree = RTree::Create(&pool_, opts).value();
  const auto data =
      workload::UniformRects(2000, 20.0, 82, Rect(0, 0, 1000, 1000));
  ASSERT_TRUE(tree->BulkLoadHilbert(data.ToEntries()).ok());
  Random rng(5);
  for (int q = 0; q < 30; ++q) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    const Rect query(x, y, x + rng.Uniform(0, 150), y + rng.Uniform(0, 150));
    std::set<uint32_t> expected;
    for (uint32_t i = 0; i < data.objects.size(); ++i) {
      if (data.objects[i].Intersects(query)) expected.insert(i);
    }
    auto hits = tree->RangeQuery(query);
    ASSERT_TRUE(hits.ok());
    std::set<uint32_t> actual;
    for (const Entry& e : *hits) actual.insert(e.id);
    EXPECT_EQ(actual, expected);
  }
}

TEST_F(HilbertLoadTest, EmptyAndDegenerate) {
  auto tree = RTree::Create(&pool_, {}).value();
  ASSERT_TRUE(tree->BulkLoadHilbert({}).ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->Validate().ok());
  // All objects at the same point (zero-extent bounds).
  std::vector<Entry> same;
  for (uint32_t i = 0; i < 500; ++i) {
    same.emplace_back(Rect(7, 7, 7, 7), i);
  }
  ASSERT_TRUE(tree->BulkLoadHilbert(same).ok());
  EXPECT_EQ(tree->size(), 500u);
  EXPECT_TRUE(tree->Validate().ok());
  EXPECT_FALSE(tree->BulkLoadHilbert(same, 0.0).ok());
}

TEST_F(HilbertLoadTest, JoinOverHilbertTreesMatchesStr) {
  const Rect uni(0, 0, 20000, 20000);
  const auto r_data = workload::GaussianClusters(800, 5, 0.04, 83, uni);
  const auto s_data = workload::UniformRects(600, 30.0, 84, uni);
  RTree::Options opts;
  opts.max_entries = 32;
  auto str_r = RTree::Create(&pool_, opts).value();
  auto str_s = RTree::Create(&pool_, opts).value();
  auto hil_r = RTree::Create(&pool_, opts).value();
  auto hil_s = RTree::Create(&pool_, opts).value();
  ASSERT_TRUE(str_r->BulkLoad(r_data.ToEntries()).ok());
  ASSERT_TRUE(str_s->BulkLoad(s_data.ToEntries()).ok());
  ASSERT_TRUE(hil_r->BulkLoadHilbert(r_data.ToEntries()).ok());
  ASSERT_TRUE(hil_s->BulkLoadHilbert(s_data.ToEntries()).ok());
  auto a = core::RunKDistanceJoin(*str_r, *str_s, 500,
                                  core::KdjAlgorithm::kAmKdj,
                                  core::JoinOptions{}, nullptr);
  auto b = core::RunKDistanceJoin(*hil_r, *hil_s, 500,
                                  core::KdjAlgorithm::kAmKdj,
                                  core::JoinOptions{}, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-9) << "rank " << i;
  }
}

}  // namespace
}  // namespace amdj::rtree

#include "core/dmax_estimator.h"

#include <algorithm>
#include <cmath>

namespace amdj::core {

DmaxEstimator::DmaxEstimator(const geom::Rect& r_bounds, uint64_t r_count,
                             const geom::Rect& s_bounds, uint64_t s_count,
                             geom::Metric metric) {
  const double nr = static_cast<double>(std::max<uint64_t>(1, r_count));
  const double ns = static_cast<double>(std::max<uint64_t>(1, s_count));
  double area = geom::IntersectionArea(r_bounds, s_bounds);
  if (area <= 0.0) {
    // Disjoint data sets: Eq. 3's derivation assumes a shared region. Use
    // the union area as the effective region and remember the gap, which
    // lower-bounds every pair distance.
    area = geom::Union(r_bounds, s_bounds).Area();
    gap_ = geom::MinDistance(r_bounds, s_bounds, metric).raw();
  }
  if (area <= 0.0) area = 1.0;  // both data sets degenerate to a point/line
  rho_ = area / (geom::UnitBallAreaCoefficient(metric) * nr * ns);
}

geom::DistVal DmaxEstimator::InitialEstimate(uint64_t k) const {
  // Raw view: Eq. 3 is distance-space arithmetic; wrapped on the way out.
  return geom::DistVal(gap_ + std::sqrt(static_cast<double>(k) * rho_));
}

geom::DistVal DmaxEstimator::ArithmeticCorrection(
    uint64_t k, uint64_t k0, geom::DistVal dmax_k0) const {
  if (k0 >= k) return dmax_k0;
  const double d0 = dmax_k0.raw();
  return geom::DistVal(
      std::sqrt(d0 * d0 + static_cast<double>(k - k0) * rho_));
}

geom::DistVal DmaxEstimator::GeometricCorrection(
    uint64_t k, uint64_t k0, geom::DistVal dmax_k0) const {
  if (k0 == 0 || dmax_k0 <= geom::DistVal::Zero()) {
    return ArithmeticCorrection(k, k0, dmax_k0);
  }
  if (k0 >= k) return dmax_k0;
  return geom::DistVal(dmax_k0.raw() * std::sqrt(static_cast<double>(k) /
                                                 static_cast<double>(k0)));
}

geom::DistVal DmaxEstimator::Correct(uint64_t k, uint64_t k0,
                                     geom::DistVal dmax_k0,
                                     bool aggressive) const {
  const geom::DistVal a = ArithmeticCorrection(k, k0, dmax_k0);
  const geom::DistVal g = GeometricCorrection(k, k0, dmax_k0);
  return aggressive ? std::min(a, g) : std::max(a, g);
}

std::function<geom::DistVal(uint64_t)> DmaxEstimator::BoundaryFn() const {
  const double rho = rho_;
  const double gap = gap_;
  return [rho, gap](uint64_t c) {
    return geom::DistVal(gap + std::sqrt(static_cast<double>(c) * rho));
  };
}

}  // namespace amdj::core

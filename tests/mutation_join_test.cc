// Differential testing of index mutation + join interplay: random
// insert/delete workloads applied to the trees, with the k-distance join
// checked against a brute-force shadow after every epoch.

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace amdj::core {
namespace {

using geom::Rect;

struct Shadow {
  std::map<uint32_t, Rect> objects;  // id -> rect
};

class MutationJoinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationJoinTest, JoinStaysCorrectAcrossInsertDeleteEpochs) {
  storage::InMemoryDiskManager disk;
  storage::BufferPool pool(&disk, 128);
  rtree::RTree::Options opts;
  opts.max_entries = 8;
  auto r_tree = rtree::RTree::Create(&pool, opts).value();
  auto s_tree = rtree::RTree::Create(&pool, opts).value();
  Shadow r_shadow, s_shadow;
  Random rng(GetParam());
  uint32_t next_id = 0;

  auto mutate = [&](rtree::RTree& tree, Shadow& shadow, int ops) {
    for (int i = 0; i < ops; ++i) {
      if (shadow.objects.empty() || rng.Bernoulli(0.65)) {
        const double x = rng.Uniform(0, 1000);
        const double y = rng.Uniform(0, 1000);
        const Rect rect(x, y, x + rng.Uniform(0, 10), y + rng.Uniform(0, 10));
        const uint32_t id = next_id++;
        ASSERT_TRUE(tree.Insert(rect, id).ok());
        shadow.objects[id] = rect;
      } else {
        auto it = shadow.objects.begin();
        std::advance(it, rng.UniformInt(shadow.objects.size()));
        bool found = false;
        ASSERT_TRUE(tree.Delete(it->second, it->first, &found).ok());
        ASSERT_TRUE(found) << "id " << it->first;
        shadow.objects.erase(it);
      }
    }
  };

  for (int epoch = 0; epoch < 6; ++epoch) {
    mutate(*r_tree, r_shadow, 120);
    mutate(*s_tree, s_shadow, 90);
    ASSERT_TRUE(r_tree->Validate().ok()) << r_tree->Validate().ToString();
    ASSERT_TRUE(s_tree->Validate().ok()) << s_tree->Validate().ToString();
    ASSERT_EQ(r_tree->size(), r_shadow.objects.size());
    ASSERT_EQ(s_tree->size(), s_shadow.objects.size());

    // Brute-force reference over the shadows.
    std::vector<double> brute;
    for (const auto& [ri, rr] : r_shadow.objects) {
      for (const auto& [si, sr] : s_shadow.objects) {
        brute.push_back(geom::MinDistance(rr, sr));
      }
    }
    std::sort(brute.begin(), brute.end());

    const uint64_t k = 1 + rng.UniformInt(uint64_t{200});
    for (const auto algorithm :
         {KdjAlgorithm::kBKdj, KdjAlgorithm::kAmKdj}) {
      auto result =
          RunKDistanceJoin(*r_tree, *s_tree, k, algorithm, JoinOptions{},
                           nullptr);
      ASSERT_TRUE(result.ok());
      const size_t expected = std::min<uint64_t>(k, brute.size());
      ASSERT_EQ(result->size(), expected)
          << ToString(algorithm) << " epoch " << epoch;
      for (size_t i = 0; i < expected; ++i) {
        ASSERT_NEAR((*result)[i].distance, brute[i], 1e-9)
            << ToString(algorithm) << " epoch " << epoch << " rank " << i;
        // The reported pair is live in both shadows and realizes the
        // distance.
        const auto rit = r_shadow.objects.find((*result)[i].r_id);
        const auto sit = s_shadow.objects.find((*result)[i].s_id);
        ASSERT_NE(rit, r_shadow.objects.end());
        ASSERT_NE(sit, s_shadow.objects.end());
        ASSERT_NEAR(geom::MinDistance(rit->second, sit->second),
                    (*result)[i].distance, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationJoinTest,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

}  // namespace
}  // namespace amdj::core

// Negative-compile probe: reads and writes a AMDJ_GUARDED_BY field
// without holding its mutex. Under -Werror=thread-safety this translation
// unit MUST fail to compile; if it ever compiles, the annotation layer has
// stopped rejecting unguarded access and the harness fails the build.

#include "common/mutex.h"

namespace {

class GuardedCounter {
 public:
  // BUG (deliberate): touches count_ with mu_ not held.
  void Bump() { ++count_; }

 private:
  amdj::Mutex mu_;
  int count_ AMDJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Bump();
  return 0;
}

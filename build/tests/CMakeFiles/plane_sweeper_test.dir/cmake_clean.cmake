file(REMOVE_RECURSE
  "CMakeFiles/plane_sweeper_test.dir/plane_sweeper_test.cc.o"
  "CMakeFiles/plane_sweeper_test.dir/plane_sweeper_test.cc.o.d"
  "plane_sweeper_test"
  "plane_sweeper_test.pdb"
  "plane_sweeper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plane_sweeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "core/distance_join.h"

#include "common/run_report.h"
#include "common/timer.h"
#include "common/trace.h"
#include "storage/query_context.h"
#include "core/amidj.h"
#include "core/amkdj.h"
#include "core/bkdj.h"
#include "core/hs_join.h"
#include "core/sj_sort.h"

namespace amdj::core {

namespace {

/// Wraps an IDJ cursor: attributes buffer-pool accesses to this query's
/// stats for the duration of every call, measures CPU time around every
/// Next(), and finalizes an attached run report when the cursor is
/// destroyed (destroy the cursor before serializing the report).
///
/// Attribution is installed per call (a thread-local
/// storage::QueryAttributionScope), not for the cursor's lifetime: between
/// calls the owning thread may run other queries — the JoinService
/// interleaves cursors and one-shot joins on its workers.
class TimedCursor : public DistanceJoinCursor {
 public:
  TimedCursor(JoinStats* stats, const JoinOptions& options,
              std::unique_ptr<JoinStats> owned_stats,
              std::unique_ptr<DistanceJoinCursor> inner)
      : stats_(stats),
        tracer_(options.tracer),
        report_(options.report),
        owned_stats_(std::move(owned_stats)),
        inner_(std::move(inner)) {}

  ~TimedCursor() override {
    {
      const storage::QueryAttributionScope scope(stats_, tracer_);
      inner_.reset();  // quiesce the algorithm before reading stats
    }
    if (report_ != nullptr) {
      report_->Finish(stats_ != nullptr ? *stats_ : JoinStats());
    }
  }

  Status Next(ResultPair* out, bool* done) override {
    const storage::QueryAttributionScope scope(stats_, tracer_);
    Timer timer;
    const Status status = inner_->Next(out, done);
    if (stats_ != nullptr) stats_->cpu_seconds += timer.ElapsedSeconds();
    return status;
  }

  uint64_t produced() const override { return inner_->produced(); }
  void PrefetchHint(uint64_t k) override {
    const storage::QueryAttributionScope scope(stats_, tracer_);
    inner_->PrefetchHint(k);
  }

  /// The wrapped cursor (for algorithm-specific knobs like
  /// AmIdjCursor::ForceNextStageEdmax).
  DistanceJoinCursor* inner() { return inner_.get(); }

 private:
  JoinStats* stats_;
  Tracer* tracer_;
  RunReport* report_;
  /// Backing stats when the caller passed none but attached a report (the
  /// report's phase deltas and totals must read one shared counter block).
  std::unique_ptr<JoinStats> owned_stats_;
  std::unique_ptr<DistanceJoinCursor> inner_;
};

}  // namespace

const char* ToString(KdjAlgorithm a) {
  switch (a) {
    case KdjAlgorithm::kHsKdj:
      return "HS-KDJ";
    case KdjAlgorithm::kBKdj:
      return "B-KDJ";
    case KdjAlgorithm::kAmKdj:
      return "AM-KDJ";
    case KdjAlgorithm::kSjSort:
      return "SJ-SORT";
  }
  return "?";
}

const char* ToString(IdjAlgorithm a) {
  switch (a) {
    case IdjAlgorithm::kHsIdj:
      return "HS-IDJ";
    case IdjAlgorithm::kAmIdj:
      return "AM-IDJ";
  }
  return "?";
}

StatusOr<double> ComputeTrueDmax(const rtree::RTree& r, const rtree::RTree& s,
                                 uint64_t k, const JoinOptions& options) {
  JoinOptions oracle_options = options;
  oracle_options.forced_edmax.reset();
  // The oracle is bookkeeping, not part of the observed run: it must not
  // emit trace events or open report phases.
  oracle_options.tracer = nullptr;
  oracle_options.report = nullptr;
  // A detached scope shadows any caller attribution: the oracle's node
  // accesses are bookkeeping and must not be charged to the observed run.
  const storage::QueryAttributionScope detached(nullptr, nullptr);
  auto pairs = AmKdj::Run(r, s, k, oracle_options, nullptr);
  if (!pairs.ok()) return pairs.status();
  if (pairs->empty()) return 0.0;
  return pairs->back().distance;
}

StatusOr<std::vector<ResultPair>> RunKDistanceJoin(const rtree::RTree& r,
                                                   const rtree::RTree& s,
                                                   uint64_t k,
                                                   KdjAlgorithm algorithm,
                                                   const JoinOptions& options,
                                                   JoinStats* stats) {
  double dmax = 0.0;
  if (algorithm == KdjAlgorithm::kSjSort) {
    // Oracle pre-pass, not charged to `stats` (favorable assumption).
    auto oracle = ComputeTrueDmax(r, s, k, options);
    if (!oracle.ok()) return oracle.status();
    dmax = *oracle;
  }

  // A report's phase deltas and totals must read one shared counter block;
  // back it locally when the caller attached a report without stats.
  JoinStats report_stats;
  if (stats == nullptr && options.report != nullptr) stats = &report_stats;
  if (options.report != nullptr) {
    options.report->SetMeta(ToString(algorithm), k);
  }

  // Thread-local attribution: node accesses this query performs (on this
  // thread and on parallel-executor workers) land in `stats`, even when
  // other queries run concurrently over the same buffer pools.
  const storage::QueryAttributionScope scope(stats, options.tracer);
  Timer timer;
  StatusOr<std::vector<ResultPair>> result =
      std::vector<ResultPair>();  // overwritten below
  {
    TraceSpan join_span(options.tracer, ToString(algorithm),
                        {{"k", static_cast<double>(k)}});
    switch (algorithm) {
      case KdjAlgorithm::kHsKdj:
        result = HsKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kBKdj:
        result = BKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kAmKdj:
        result = AmKdj::Run(r, s, k, options, stats);
        break;
      case KdjAlgorithm::kSjSort:
        result = SjSort::Run(r, s, k, geom::DistVal(dmax), options, stats);
        break;
    }
  }
  if (stats != nullptr) stats->cpu_seconds += timer.ElapsedSeconds();
  if (options.report != nullptr) options.report->Finish(*stats);
  return result;
}

StatusOr<std::unique_ptr<DistanceJoinCursor>> OpenIncrementalJoin(
    const rtree::RTree& r, const rtree::RTree& s, IdjAlgorithm algorithm,
    const JoinOptions& options, JoinStats* stats) {
  // Same shared-counter-block requirement as RunKDistanceJoin, but the
  // backing stats must live as long as the cursor.
  std::unique_ptr<JoinStats> owned_stats;
  if (stats == nullptr && options.report != nullptr) {
    owned_stats = std::make_unique<JoinStats>();
    stats = owned_stats.get();
  }
  if (options.report != nullptr) {
    options.report->SetMeta(ToString(algorithm), 0);
  }
  std::unique_ptr<DistanceJoinCursor> inner;
  {
    // Construction may already touch the trees (root fetches); attribute
    // it like any Next() call.
    const storage::QueryAttributionScope scope(stats, options.tracer);
    switch (algorithm) {
      case IdjAlgorithm::kHsIdj:
        inner = std::make_unique<HsIdjCursor>(r, s, options, stats);
        break;
      case IdjAlgorithm::kAmIdj:
        inner = std::make_unique<AmIdjCursor>(r, s, options, stats);
        break;
    }
  }
  return std::unique_ptr<DistanceJoinCursor>(new TimedCursor(
      stats, options, std::move(owned_stats), std::move(inner)));
}

}  // namespace amdj::core

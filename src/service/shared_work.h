#ifndef AMDJ_SERVICE_SHARED_WORK_H_
#define AMDJ_SERVICE_SHARED_WORK_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "core/cutoff_estimator.h"
#include "core/pair_entry.h"
#include "geom/units.h"
// For JoinRequest/JoinResponse (std::promise<JoinResponse> needs the
// complete type). join_service.h only forward-declares this header's
// types, so the dependency is one-directional.
#include "service/join_service.h"

namespace amdj {
class Gauge;  // common/metrics.h
}  // namespace amdj

namespace amdj::service {

/// The three canonical keys of one request against the shared-work layer.
/// All are keyed *within* one JoinService instance (one tree pair), so the
/// "pair" component of the ISSUE's (pair, options-key, k) tuple is the
/// registry instance itself.
struct SharedWorkKeys {
  /// In-flight dedupe identity: kind | algorithm | k | every semantic
  /// option. Two requests with equal exec keys produce byte-identical
  /// responses, so one execution can serve both.
  std::optional<std::string> exec_key;
  /// Result-cache identity: like exec_key but without k — a cache entry
  /// stores the k it ran at and answers any k' <= k by prefix. KDJ only
  /// (IDJ cursors stream; their drained prefix is the same data, but the
  /// cache records completed KDJ runs per the prefix-property argument).
  std::optional<std::string> cache_key;
  /// Observed-Dmax table identity: only the options that change the result
  /// *multiset* of distances — metric, self-join exclusion, windows. The
  /// k-th smallest distance is identical across algorithms, sweep
  /// strategies and tie-break policies, so Dmax learned under one
  /// configuration seeds every other.
  std::optional<std::string> seed_key;
};

/// Canonicalizes a request into its shared-work keys. Requests that carry
/// per-request observers (tracer, report) or external cutoff plumbing
/// (shared_cutoff_key/publish/sink) are never shared — all three keys come
/// back empty: an observer expects to see *its own* execution, and a
/// piggybacked response would silently starve it.
SharedWorkKeys ComputeSharedWorkKeys(const JoinRequest& request);

/// Cross-query shared-work state of one JoinService: the in-flight dedupe
/// map, the semantic result cache, and the observed-Dmax table. All three
/// are guarded by one internal mutex; every method is thread-safe. Lock
/// order with the service's admission mutex is registry -> admission
/// (JoinService nests its counter updates inside registry critical
/// sections, never the reverse).
class SharedWorkRegistry {
 public:
  /// `cache_entries` bounds the result cache (0 disables it; the dedupe
  /// map is bounded by the number of distinct in-flight requests and needs
  /// no cap). `cache_size_gauge`, when set, tracks the live entry count
  /// (amdj_service_shared_cache_entries).
  explicit SharedWorkRegistry(size_t cache_entries,
                              Gauge* cache_size_gauge = nullptr);
  ~SharedWorkRegistry();

  SharedWorkRegistry(const SharedWorkRegistry&) = delete;
  SharedWorkRegistry& operator=(const SharedWorkRegistry&) = delete;

  // --- in-flight dedupe ---

  /// One request piggybacking on an identical in-flight execution.
  struct Follower {
    std::promise<JoinResponse> promise;
    std::chrono::steady_clock::time_point submit_time;
  };
  /// Followers plus the leader's execution-start time, handed to the
  /// leader at completion so it can attribute wait/exec per follower.
  struct FollowerGroup {
    std::vector<Follower> followers;
    std::chrono::steady_clock::time_point exec_start;
    bool exec_started = false;
  };

  /// Atomically: if `exec_key` has an in-flight leader, registers a
  /// follower and returns its future; otherwise registers the caller AS
  /// the leader and returns nullopt. `admit` runs under the registry lock
  /// in the leader case only, BEFORE the leader is registered — the
  /// service does its admission-cap check and counter updates there, and
  /// a false return rejects the request without registering anything
  /// (JoinOrLead then also returns nullopt; the caller distinguishes via
  /// the admit callback's own out-state). Follower registration invokes
  /// `on_follower` (counter updates) under the lock instead.
  std::optional<std::future<JoinResponse>> JoinOrLead(
      const std::string& exec_key, bool* became_leader,
      const std::function<bool()>& admit,
      const std::function<void()>& on_follower) AMDJ_EXCLUDES(mutex_);

  /// Marks the leader's execution start (wait/exec attribution boundary
  /// for followers that joined while the leader sat queued).
  void NoteExecutionStart(const std::string& exec_key) AMDJ_EXCLUDES(mutex_);

  /// Removes the in-flight entry and returns its followers; subsequent
  /// identical submissions start a fresh leader. The caller resolves each
  /// follower's promise.
  FollowerGroup FinishExecution(const std::string& exec_key)
      AMDJ_EXCLUDES(mutex_);

  // --- semantic result cache ---

  /// Answer for a k'-request served from cache: the result prefix, and the
  /// byte-identical-to-solo guarantee documented in DESIGN.md.
  struct CacheHit {
    std::vector<core::ResultPair> results;
  };

  /// Returns the cached prefix when a completed run answers `k`: a stored
  /// run at k0 >= k answers by prefix, and an *exhaustive* stored run
  /// (fewer than k0 results exist in the data) answers every k >= its
  /// result count with the full set. Refreshes LRU order on hit.
  std::optional<CacheHit> CacheLookup(const std::string& cache_key,
                                      uint64_t k) AMDJ_EXCLUDES(mutex_);

  /// Records a completed KDJ run. Keeps whichever of (existing, new) entry
  /// has the larger k — the larger run answers strictly more queries.
  /// `results` must be the complete, final result vector.
  void CacheInsert(const std::string& cache_key, uint64_t k,
                   std::vector<core::ResultPair> results)
      AMDJ_EXCLUDES(mutex_);

  // --- learned eDmax seed ---

  /// Records the exact Dmax observed by a completed run: `k_observed` is
  /// the result count actually produced, `dmax` the last result's
  /// distance, `exhaustive` whether the data held fewer than the requested
  /// k pairs (then `dmax` upper-bounds Dmax(k') for every k').
  void RecordDmax(const std::string& seed_key, uint64_t k_observed,
                  geom::DistVal dmax, bool exhaustive) AMDJ_EXCLUDES(mutex_);

  /// Upper-bound-or-estimate seed for a new run at `k` (distance space),
  /// or nullopt when nothing relevant was observed. An observation at
  /// k0 >= k (or any exhaustive observation) yields an exact upper bound
  /// Dmax(k) <= dmax(k0); an observation at k0 < k extrapolates through
  /// the estimator's conservative Eq. 4/5 correction — an estimate, which
  /// is still exact-safe because the seed only stages the adaptive
  /// algorithms (JoinOptions::edmax_seed).
  std::optional<geom::DistVal> SeedFor(const std::string& seed_key,
                                       uint64_t k,
                                       const core::CutoffEstimator& estimator)
      AMDJ_EXCLUDES(mutex_);

  /// Counts a shareable request that found no shared work and ran its own
  /// execution (the leader path of JoinOrLead counts this itself; this is
  /// for the cache-enabled/dedupe-disabled configuration where JoinOrLead
  /// is never called).
  void NoteMiss() AMDJ_EXCLUDES(mutex_);

  // --- introspection (tests, service accessors) ---

  size_t cache_size() const AMDJ_EXCLUDES(mutex_);
  size_t cache_capacity() const { return cache_entries_; }
  uint64_t inflight_hits() const AMDJ_EXCLUDES(mutex_);
  uint64_t cache_hits() const AMDJ_EXCLUDES(mutex_);
  uint64_t seed_hits() const AMDJ_EXCLUDES(mutex_);
  uint64_t misses() const AMDJ_EXCLUDES(mutex_);

 private:
  struct InflightEntry;
  struct CacheEntry;
  struct SeedObservations;

  const size_t cache_entries_;
  Gauge* const cache_size_gauge_;

  mutable Mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<InflightEntry>> inflight_
      AMDJ_GUARDED_BY(mutex_);
  std::unordered_map<std::string, CacheEntry> cache_ AMDJ_GUARDED_BY(mutex_);
  /// LRU order, most recent at front; values are keys into cache_.
  std::list<std::string> lru_ AMDJ_GUARDED_BY(mutex_);
  std::unordered_map<std::string, SeedObservations> seeds_
      AMDJ_GUARDED_BY(mutex_);
  uint64_t inflight_hits_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t cache_hits_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t seed_hits_ AMDJ_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ AMDJ_GUARDED_BY(mutex_) = 0;
};

}  // namespace amdj::service

#endif  // AMDJ_SERVICE_SHARED_WORK_H_

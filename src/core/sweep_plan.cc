#include "core/sweep_plan.h"

#include <cmath>

namespace amdj::core {

namespace {

int WiderUnionAxis(const geom::Rect& r, const geom::Rect& s) {
  const geom::Rect u = geom::Union(r, s);
  return u.Side(0) >= u.Side(1) ? 0 : 1;
}

int ChooseAxis(const geom::Rect& r, const geom::Rect& s,
               geom::DistVal cutoff) {
  if (!std::isfinite(cutoff.raw())) return WiderUnionAxis(r, s);
  const double ix = geom::SweepingIndex(r, s, cutoff.raw(), 0);
  const double iy = geom::SweepingIndex(r, s, cutoff.raw(), 1);
  if (ix == iy) return WiderUnionAxis(r, s);
  return ix < iy ? 0 : 1;
}

}  // namespace

SweepPlan ChooseSweepPlan(const geom::Rect& r, const geom::Rect& s,
                          geom::DistVal cutoff, SweepStrategy strategy) {
  SweepPlan plan;
  switch (strategy) {
    case SweepStrategy::kOptimized:
      plan.axis = ChooseAxis(r, s, cutoff);
      plan.dir = geom::ChooseSweepDirection(r, s, plan.axis);
      break;
    case SweepStrategy::kFixedXForward:
      plan.axis = 0;
      plan.dir = geom::SweepDirection::kForward;
      break;
    case SweepStrategy::kAxisOnly:
      plan.axis = ChooseAxis(r, s, cutoff);
      plan.dir = geom::SweepDirection::kForward;
      break;
    case SweepStrategy::kDirectionOnly:
      plan.axis = 0;
      plan.dir = geom::ChooseSweepDirection(r, s, 0);
      break;
  }
  return plan;
}

}  // namespace amdj::core

#include <gtest/gtest.h>

#include "core/amidj.h"
#include "core/distance_join.h"
#include "test_util.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using test::BruteForceDistances;
using test::ExpectNoDuplicates;
using test::JoinFixture;
using test::MakeFixture;

JoinFixture ClusterFixture(uint64_t nr = 250, uint64_t ns = 180,
                           uint32_t fanout = 8) {
  const geom::Rect uni(0, 0, 10000, 10000);
  return MakeFixture(workload::GaussianClusters(nr, 6, 0.05, 41, uni),
                     workload::UniformRects(ns, 40.0, 42, uni), fanout);
}

std::vector<ResultPair> Drain(DistanceJoinCursor& cursor, uint64_t limit) {
  std::vector<ResultPair> out;
  ResultPair pair;
  bool done = false;
  while (out.size() < limit) {
    EXPECT_TRUE(cursor.Next(&pair, &done).ok());
    if (done) break;
    out.push_back(pair);
  }
  return out;
}

class IdjTest : public ::testing::TestWithParam<IdjAlgorithm> {};

TEST_P(IdjTest, ProducesAllPairsInOrder) {
  JoinFixture f = ClusterFixture(60, 40);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.idj_initial_k = 16;  // force many AM-IDJ stages
  JoinStats stats;
  auto cursor =
      OpenIncrementalJoin(*f.r, *f.s, GetParam(), options, &stats);
  ASSERT_TRUE(cursor.ok());
  const auto results = Drain(**cursor, brute.size() + 10);
  ASSERT_EQ(results.size(), brute.size());  // exhausts exactly the product
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].distance, brute[i], 1e-9) << "rank " << i;
    if (i > 0) EXPECT_GE(results[i].distance, results[i - 1].distance);
  }
  ExpectNoDuplicates(results);
  EXPECT_EQ((*cursor)->produced(), brute.size());
  EXPECT_EQ(stats.pairs_produced, brute.size());

  // A drained cursor keeps reporting done without error.
  ResultPair pair;
  bool done = false;
  ASSERT_TRUE((*cursor)->Next(&pair, &done).ok());
  EXPECT_TRUE(done);
}

TEST_P(IdjTest, PrefixMatchesKdj) {
  JoinFixture f = ClusterFixture();
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  auto cursor =
      OpenIncrementalJoin(*f.r, *f.s, GetParam(), options, nullptr);
  ASSERT_TRUE(cursor.ok());
  const auto results = Drain(**cursor, 500);
  ASSERT_EQ(results.size(), 500u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

TEST_P(IdjTest, EmptyInputsFinishImmediately) {
  workload::Dataset empty;
  workload::Dataset one;
  one.objects = {geom::Rect(0, 0, 1, 1)};
  JoinFixture f = MakeFixture(empty, one);
  auto cursor =
      OpenIncrementalJoin(*f.r, *f.s, GetParam(), JoinOptions{}, nullptr);
  ASSERT_TRUE(cursor.ok());
  ResultPair pair;
  bool done = false;
  ASSERT_TRUE((*cursor)->Next(&pair, &done).ok());
  EXPECT_TRUE(done);
}

TEST_P(IdjTest, SpillingQueueDoesNotChangeResults) {
  JoinFixture f = ClusterFixture(150, 120);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.queue_disk = f.queue_disk.get();
  options.queue_memory_bytes = 8 * 1024;  // tiny: heavy spilling
  auto cursor =
      OpenIncrementalJoin(*f.r, *f.s, GetParam(), options, nullptr);
  ASSERT_TRUE(cursor.ok());
  const auto results = Drain(**cursor, 2000);
  ASSERT_EQ(results.size(), 2000u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_NEAR(results[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, IdjTest,
                         ::testing::Values(IdjAlgorithm::kHsIdj,
                                           IdjAlgorithm::kAmIdj),
                         [](const auto& info) {
                           return info.param == IdjAlgorithm::kHsIdj
                                      ? "HsIdj"
                                      : "AmIdj";
                         });

TEST(AmIdjTest, StepwiseBatchesStayOrderedAcrossStages) {
  JoinFixture f = ClusterFixture();
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.idj_initial_k = 50;
  AmIdjCursor cursor(*f.r, *f.s, options, nullptr);
  // Simulate a user repeatedly asking for batches of 100.
  std::vector<ResultPair> all;
  for (int batch = 0; batch < 8; ++batch) {
    cursor.PrefetchHint(all.size() + 100);
    const auto part = Drain(cursor, 100);
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), 800u);
  EXPECT_GT(cursor.stage_count(), 1u);  // initial_k 50 forces compensation
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(all[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

TEST(AmIdjTest, ForcedStageEdmaxScheduleIsRespectedAndCorrect) {
  JoinFixture f = ClusterFixture(100, 80);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  AmIdjCursor cursor(*f.r, *f.s, options, nullptr);
  // Drive with the *true* Dmax schedule (Figure 15's oracle variant):
  // each batch of 200 ends exactly at the real k-th distance.
  std::vector<ResultPair> all;
  for (int batch = 1; batch <= 5; ++batch) {
    const size_t target = batch * 200;
    cursor.ForceNextStageEdmax(geom::DistVal(brute[target - 1]));
    const auto part = Drain(cursor, target - all.size());
    all.insert(all.end(), part.begin(), part.end());
    ASSERT_EQ(all.size(), target);
  }
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(all[i].distance, brute[i], 1e-9) << "rank " << i;
  }
}

TEST(AmIdjTest, UnderestimatedForcedEdmaxStillCorrect) {
  JoinFixture f = ClusterFixture(100, 80);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  JoinOptions options;
  options.forced_edmax = geom::DistVal(brute[3] * 0.5);  // absurdly aggressive first stage
  options.idj_initial_k = 4;
  AmIdjCursor cursor(*f.r, *f.s, options, nullptr);
  const auto results = Drain(cursor, 500);
  ASSERT_EQ(results.size(), 500u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].distance, brute[i], 1e-9) << "rank " << i;
  }
  EXPECT_GT(cursor.stage_count(), 2u);
}

TEST(AmIdjTest, CorrectionPoliciesAllCorrect) {
  JoinFixture f = ClusterFixture(80, 60);
  const auto brute = BruteForceDistances(f.r_objects, f.s_objects);
  for (const auto policy :
       {CorrectionPolicy::kAggressive, CorrectionPolicy::kConservative,
        CorrectionPolicy::kArithmeticOnly, CorrectionPolicy::kGeometricOnly}) {
    JoinOptions options;
    options.correction = policy;
    options.idj_initial_k = 8;
    AmIdjCursor cursor(*f.r, *f.s, options, nullptr);
    const auto results = Drain(cursor, 300);
    ASSERT_EQ(results.size(), 300u);
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_NEAR(results[i].distance, brute[i], 1e-9)
          << "policy " << static_cast<int>(policy) << " rank " << i;
    }
  }
}

TEST(AmIdjTest, HintSizesFirstStage) {
  JoinFixture f = ClusterFixture(100, 80);
  JoinOptions options;
  options.idj_initial_k = 10;
  AmIdjCursor small_hint(*f.r, *f.s, options, nullptr);
  AmIdjCursor big_hint(*f.r, *f.s, options, nullptr);
  big_hint.PrefetchHint(2000);
  Drain(small_hint, 1);
  Drain(big_hint, 1);
  // The hinted cursor starts with a larger (k-scaled) cutoff.
  EXPECT_GT(big_hint.current_edmax(), small_hint.current_edmax());
}

}  // namespace
}  // namespace amdj::core

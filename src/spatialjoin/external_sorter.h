#ifndef AMDJ_SPATIALJOIN_EXTERNAL_SORTER_H_
#define AMDJ_SPATIALJOIN_EXTERNAL_SORTER_H_

#include <memory>
#include <queue>
#include <vector>

#include "common/stats.h"
#include "geom/units.h"
#include "common/status.h"
#include "core/pair_entry.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace amdj::spatialjoin {

/// External merge sort of join results by ascending distance: the sort half
/// of the paper's SJ-SORT baseline. Records accumulate in a memory buffer;
/// full buffers are sorted and written to disk as runs; Finish() prepares a
/// k-way streaming merge holding one page per run.
///
/// With a null disk manager the sorter degrades to a plain in-memory sort.
class ExternalSorter {
 public:
  /// `memory_bytes` bounds the in-memory run buffer. `stats` (optional)
  /// receives queue_page_reads/writes for run I/O.
  ExternalSorter(storage::DiskManager* disk, size_t memory_bytes,
                 JoinStats* stats);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record. Must not be called after Finish().
  Status Add(const core::ResultPair& record);

  /// Seals the input and prepares the merge. Idempotent.
  Status Finish();

  /// Streams records in ascending distance order. Sets `*done` when the
  /// stream is exhausted. Requires Finish().
  Status Next(core::ResultPair* out, bool* done);

  /// Records added.
  uint64_t count() const { return count_; }
  /// Number of on-disk runs produced (0 when everything fit in memory).
  size_t run_count() const { return runs_.size(); }

 private:
  struct Run {
    std::vector<storage::PageId> pages;
    uint64_t records = 0;
  };

  /// Sequential reader over one run, one page buffered.
  struct RunReader {
    const Run* run = nullptr;
    size_t page_index = 0;
    size_t record_in_page = 0;
    uint64_t consumed = 0;
    char buffer[storage::kPageSize];
  };

  static constexpr size_t kRecordSize = sizeof(core::ResultPair);
  static constexpr size_t kRecordsPerPage = storage::kPageSize / kRecordSize;

  Status FlushRun();
  Status LoadPage(RunReader* reader);

  storage::DiskManager* disk_;
  size_t buffer_capacity_;  // records
  JoinStats* stats_;
  std::vector<core::ResultPair> buffer_;
  std::vector<Run> runs_;
  std::vector<RunReader> readers_;
  // Merge heap of (distance, reader index). The key is a true distance
  // (ResultPair records re-read from spill pages), so it carries the
  // strong distance type; comparison stays within one unit by
  // construction.
  // amdj-tidy: raw-priority-queue-ok — k-way merge over external spill
  // runs at the serialization boundary: bounded to #readers entries, no
  // spill pressure of its own; HybridQueue's paging machinery does not
  // apply.
  std::priority_queue<std::pair<geom::DistVal, size_t>,
                      std::vector<std::pair<geom::DistVal, size_t>>,
                      std::greater<>>
      merge_heap_;
  std::vector<core::ResultPair> heads_;  // current record per reader
  uint64_t count_ = 0;
  size_t buffer_cursor_ = 0;
  bool finished_ = false;
};

}  // namespace amdj::spatialjoin

#endif  // AMDJ_SPATIALJOIN_EXTERNAL_SORTER_H_

#ifndef AMDJ_GEOM_METRIC_H_
#define AMDJ_GEOM_METRIC_H_

#include <algorithm>
#include <cmath>

#include "geom/rect.h"

namespace amdj::geom {

/// Distance metric for join processing. The paper notes that "a distance
/// ... can be defined in many different ways according to various
/// application specific requirements" (Section 1); all algorithms here work
/// for any metric whose per-axis separation lower-bounds the full distance,
/// which holds for every Lp norm — so the plane-sweep pruning and Lemma 1
/// remain exact under each of these.
enum class Metric : uint8_t {
  kL2 = 0,    ///< Euclidean (the paper's evaluation metric).
  kL1 = 1,    ///< Manhattan.
  kLInf = 2,  ///< Chebyshev.
};

/// Stable display name ("L2", "L1", "Linf").
const char* ToString(Metric metric);

/// Minimum distance between two MBRs under `metric` (0 when intersecting).
inline double MinDistance(const Rect& a, const Rect& b, Metric metric) {
  const double dx = AxisDistance(a, b, 0);
  const double dy = AxisDistance(a, b, 1);
  switch (metric) {
    case Metric::kL2:
      return std::sqrt(dx * dx + dy * dy);
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

/// Maximum distance between any point of `a` and any point of `b` under
/// `metric`.
inline double MaxDistance(const Rect& a, const Rect& b, Metric metric) {
  const double dx =
      std::max(std::abs(a.hi.x - b.lo.x), std::abs(b.hi.x - a.lo.x));
  const double dy =
      std::max(std::abs(a.hi.y - b.lo.y), std::abs(b.hi.y - a.lo.y));
  switch (metric) {
    case Metric::kL2:
      return std::sqrt(dx * dx + dy * dy);
    case Metric::kL1:
      return dx + dy;
    case Metric::kLInf:
      return std::max(dx, dy);
  }
  return 0.0;
}

/// Area of the "ball" of radius d under `metric` divided by d^2: pi for
/// L2, 2 for L1 (a diamond), 4 for Linf (a square). Used by the Eq.-3
/// estimator, whose derivation counts expected neighbors in a radius-d
/// ball.
inline double UnitBallAreaCoefficient(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return M_PI;
    case Metric::kL1:
      return 2.0;
    case Metric::kLInf:
      return 4.0;
  }
  return M_PI;
}

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_METRIC_H_

#include "queue/cutoff_tracker.h"

namespace amdj::queue {

void TrackedDistanceQueue::Add(geom::KeyVal value) {
  if (lower_.size() < k_ || value < *lower_.rbegin()) {
    lower_.insert(value);
  } else {
    upper_.insert(value);
  }
  Rebalance();
}

void TrackedDistanceQueue::Revoke(geom::KeyVal value) {
  auto it = lower_.find(value);
  if (it != lower_.end()) {
    lower_.erase(it);
    Rebalance();
    return;
  }
  it = upper_.find(value);
  if (it != upper_.end()) upper_.erase(it);
}

void TrackedDistanceQueue::Rebalance() {
  while (lower_.size() > k_) {
    // Move the largest of the lower set up.
    auto last = std::prev(lower_.end());
    upper_.insert(*last);
    lower_.erase(last);
  }
  while (lower_.size() < k_ && !upper_.empty()) {
    auto first = upper_.begin();
    lower_.insert(*first);
    upper_.erase(first);
  }
}

}  // namespace amdj::queue

# Empty dependencies file for fig10_kdj.
# This may be replaced when dependencies are built.

#include "bench_common.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/run_report.h"
#include "rtree/entry.h"

namespace amdj::bench {

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v = 0;
    if (std::sscanf(arg, "--streets=%" SCNu64, &v) == 1) {
      config.streets = v;
    } else if (std::sscanf(arg, "--hydro=%" SCNu64, &v) == 1) {
      config.hydro = v;
    } else if (std::sscanf(arg, "--buffer=%" SCNu64, &v) == 1) {
      config.buffer_bytes = v;
    } else if (std::sscanf(arg, "--memory=%" SCNu64, &v) == 1) {
      config.memory_bytes = v;
    } else if (std::sscanf(arg, "--seed=%" SCNu64, &v) == 1) {
      config.seed = v;
    } else if (std::sscanf(arg, "--spill-io-threads=%" SCNu64, &v) == 1) {
      config.spill_io_threads = static_cast<uint32_t>(v);
    } else if (std::strcmp(arg, "--quick") == 0) {
      config.streets /= 10;
      config.hydro /= 10;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      std::exit(2);
    }
  }
  return config;
}

core::JoinOptions BenchEnv::MakeJoinOptions() const {
  core::JoinOptions options;
  options.queue_memory_bytes = config.memory_bytes;
  options.queue_disk = queue_disk.get();
  options.spill_io_pool = spill_io_pool.get();
  return options;
}

BenchEnv MakeTigerEnv(const BenchConfig& config) {
  BenchEnv env;
  env.config = config;
  env.tree_disk = std::make_unique<storage::InMemoryDiskManager>();
  env.queue_disk = std::make_unique<storage::InMemoryDiskManager>();
  if (config.spill_io_threads > 0) {
    env.spill_io_pool = std::make_unique<ThreadPool>(config.spill_io_threads,
                                                     "amdj-bench-io");
  }
  env.pool = std::make_unique<storage::BufferPool>(
      env.tree_disk.get(),
      std::max<size_t>(8, config.buffer_bytes / storage::kPageSize));

  workload::TigerSynthOptions wopts;
  wopts.street_segments = config.streets;
  wopts.hydro_objects = config.hydro;
  wopts.seed = config.seed;
  const workload::Dataset streets = workload::TigerStreets(wopts);
  const workload::Dataset hydro = workload::TigerHydro(wopts);

  rtree::RTree::Options topts;
  auto streets_tree = rtree::RTree::Create(env.pool.get(), topts);
  AMDJ_CHECK(streets_tree.ok()) << streets_tree.status().ToString();
  env.streets = std::move(*streets_tree);
  auto hydro_tree = rtree::RTree::Create(env.pool.get(), topts);
  AMDJ_CHECK(hydro_tree.ok()) << hydro_tree.status().ToString();
  env.hydro = std::move(*hydro_tree);

  Status s = env.streets->BulkLoad(streets.ToEntries());
  AMDJ_CHECK(s.ok()) << s.ToString();
  s = env.hydro->BulkLoad(hydro.ToEntries());
  AMDJ_CHECK(s.ok()) << s.ToString();
  return env;
}

namespace {

/// Snapshot + cold-start shared by the Run*Cold helpers.
struct ColdRun {
  storage::DiskStats tree_before;
  storage::DiskStats queue_before;
  std::chrono::steady_clock::time_point start;

  explicit ColdRun(BenchEnv& env) {
    const Status s = env.pool->Clear();
    AMDJ_CHECK(s.ok()) << s.ToString();
    tree_before = env.tree_disk->stats();
    queue_before = env.queue_disk->stats();
    start = std::chrono::steady_clock::now();
  }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  void Finish(BenchEnv& env, JoinStats* stats) const {
    const core::CostModel model;
    stats->simulated_io_seconds =
        model.Seconds(core::CostModel::Delta(tree_before,
                                             env.tree_disk->stats())) +
        model.Seconds(core::CostModel::Delta(queue_before,
                                             env.queue_disk->stats()));
  }
};

/// When AMDJ_BENCH_JSON names a file, every measured run appends one JSON
/// line there: {"bench","algorithm","k","wall_ms", the legacy top-level
/// keys "node_accesses"/"distance_computations"/"queue_insertions", and the
/// complete counter block under "stats" (JoinStats::ToJson, the same schema
/// amdj_cli --report-json embeds). scripts/run_all_benches.sh points this at
/// a per-bench file and assembles BENCH_PR2.json from them.
void AppendJsonStats(const char* algorithm, uint64_t k, double wall_ms,
                     const JoinStats& stats) {
  const char* path = std::getenv("AMDJ_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  const char* bench = std::getenv("AMDJ_BENCH_NAME");
  std::fprintf(f,
               "{\"bench\":\"%s\",\"algorithm\":\"%s\",\"k\":%" PRIu64
               ",\"wall_ms\":%.3f,\"node_accesses\":%" PRIu64
               ",\"distance_computations\":%" PRIu64
               ",\"queue_insertions\":%" PRIu64 ",\"stats\":%s}\n",
               bench != nullptr ? bench : "", algorithm, k, wall_ms,
               stats.node_accesses, stats.real_distance_computations,
               stats.main_queue_insertions, stats.ToJson().c_str());
  std::fclose(f);
}

/// When AMDJ_BENCH_REPORT_JSON names a file, every measured run also
/// carries a RunReport and appends its JSON (per-phase counter deltas +
/// cutoff trajectory) as one line there.
const char* ReportJsonPath() {
  const char* path = std::getenv("AMDJ_BENCH_REPORT_JSON");
  return (path != nullptr && *path != '\0') ? path : nullptr;
}

void AppendRunReport(const RunReport& report) {
  const char* path = ReportJsonPath();
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  const std::string json = report.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

void AppendBenchJson(const std::string& label, uint64_t k, double wall_ms,
                     const JoinStats& stats) {
  AppendJsonStats(label.c_str(), k, wall_ms, stats);
}

RunResult RunKdjCold(BenchEnv& env, core::KdjAlgorithm algorithm, uint64_t k,
                     const core::JoinOptions& options) {
  RunResult run;
  RunReport report;
  core::JoinOptions run_options = options;
  if (ReportJsonPath() != nullptr) run_options.report = &report;
  ColdRun cold(env);
  auto result = core::RunKDistanceJoin(*env.streets, *env.hydro, k,
                                       algorithm, run_options, &run.stats);
  AMDJ_CHECK(result.ok()) << result.status().ToString();
  run.results = std::move(*result);
  cold.Finish(env, &run.stats);
  AppendJsonStats(core::ToString(algorithm), k, cold.ElapsedMs(), run.stats);
  if (run_options.report != nullptr) AppendRunReport(report);
  return run;
}

RunResult RunIdjCold(BenchEnv& env, core::IdjAlgorithm algorithm, uint64_t k,
                     const core::JoinOptions& options) {
  RunResult run;
  RunReport report;
  core::JoinOptions run_options = options;
  if (ReportJsonPath() != nullptr) run_options.report = &report;
  ColdRun cold(env);
  auto cursor = core::OpenIncrementalJoin(*env.streets, *env.hydro,
                                          algorithm, run_options, &run.stats);
  AMDJ_CHECK(cursor.ok()) << cursor.status().ToString();
  core::ResultPair pair;
  bool done = false;
  for (uint64_t i = 0; i < k; ++i) {
    const Status s = (*cursor)->Next(&pair, &done);
    AMDJ_CHECK(s.ok()) << s.ToString();
    if (done) break;
    run.results.push_back(pair);
  }
  cursor->reset();  // the cursor's destructor finalizes the report
  cold.Finish(env, &run.stats);
  AppendJsonStats(core::ToString(algorithm), k, cold.ElapsedMs(), run.stats);
  if (run_options.report != nullptr) AppendRunReport(report);
  return run;
}

void PrintHeader(const std::string& title, const BenchEnv& env) {
  std::printf("# %s\n", title.c_str());
  std::printf(
      "workload: tiger-synth streets=%" PRIu64 " hydro=%" PRIu64
      " seed=%" PRIu64 "\n",
      env.config.streets, env.config.hydro, env.config.seed);
  std::printf("buffer=%zuKB queue-memory=%zuKB page=4KB\n\n",
              env.config.buffer_bytes / 1024, env.config.memory_bytes / 1024);
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatCount(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

}  // namespace amdj::bench

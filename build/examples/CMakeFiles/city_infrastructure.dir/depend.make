# Empty dependencies file for city_infrastructure.
# This may be replaced when dependencies are built.

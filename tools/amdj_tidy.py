#!/usr/bin/env python3
"""AMDJ tidy: repo-invariant checks the compiler can't express (PR 10).

The clang layer (thread-safety annotations, .clang-tidy) and the strong
unit types (geom::KeyVal / geom::DistVal) each enforce their own slice of
the repo's invariants. This suite covers the structural rules that sit
between them — rules about *which* constructs may appear *where*. It is
deliberately a portable line-level scanner (no clang dependency: the CI
container builds with GCC) with the same suppression model as clang-tidy
NOLINT: a greppable `amdj-tidy: <rule>-ok` comment with a rationale.

Checks:

  raw-mutex            std::mutex / std::lock_guard / std::unique_lock /
                       std::scoped_lock / std::condition_variable anywhere
                       outside src/common/mutex.h. Everything must go
                       through the annotated amdj::Mutex layer so the
                       Clang thread-safety analysis sees every lock.
                       Suppress: `amdj-tidy: raw-mutex-ok — <why>`.

  raw-priority-queue   std::priority_queue outside src/queue/. The main
                       queue of every join is HybridQueue (spill-aware,
                       tie-plateau-safe); a raw heap is allowed only with
                       a documented rationale on the preceding lines.
                       Suppress: `amdj-tidy: raw-priority-queue-ok — <why>`.

  raw-double-key-param a function parameter of raw `double` with a
                       key/distance-bearing name (key, dist, cutoff,
                       dmax, bound, radius, epsilon) in the public APIs
                       of src/queue/ and src/core/. These must take
                       geom::KeyVal / geom::DistVal so unit mix-ups fail
                       to compile. Suppress: `amdj-tidy: raw-double-ok`.

  nondeterminism       std::random_device, rand()/srand(), system_clock
                       or high_resolution_clock inside the deterministic
                       pipeline (src/geom, src/queue, src/core,
                       src/rtree, src/spatialjoin, src/storage). Join
                       output is bit-reproducible by contract (the
                       figure-counter guard diffs at 1.00x); wall-clock
                       timing belongs in common/ (Timer, metrics) and
                       seeded common/random.h Random is the only RNG.
                       Suppress: `amdj-tidy: nondet-ok — <why>`.

Usage:
  tools/amdj_tidy.py [paths...]                 # default: src/ tools/
  tools/amdj_tidy.py --compile-commands build/compile_commands.json
  tools/amdj_tidy.py --self-test

With --compile-commands the scanned set is the union of the default roots
and every in-repo translation unit listed in the database, so a source
added to the build but parked outside src//tools/ cannot dodge the suite.

Exit status: 0 clean, 1 violations found (-Werror semantics), 2 usage
error or broken self-test.
"""

import json
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}
SUPPRESS_FMT = "amdj-tidy: {rule}-ok"
# How many preceding lines a suppression comment may sit above the
# construct it exempts (block comments above a member declaration).
SUPPRESS_LOOKBACK = 12

RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")
RAW_PRIORITY_QUEUE = re.compile(r"\bstd::priority_queue\b")
# `double name` in parameter position: preceded by `(` or `,`, followed by
# `,` `)` or a default argument. Matches across the unit-bearing names only.
RAW_DOUBLE_PARAM = re.compile(
    r"[(,]\s*(?:const\s+)?double\s+(\w+)\s*[,)=]")
KEY_BEARING = re.compile(
    r"key|dist|cutoff|dmax|edmax|bound|radius|epsilon", re.IGNORECASE)
NONDETERMINISM = re.compile(
    r"\bstd::random_device\b|\b(?:std::)?s?rand\s*\(|"
    r"\bsystem_clock\b|\bhigh_resolution_clock\b")

DETERMINISTIC_DIRS = ("src/geom", "src/queue", "src/core", "src/rtree",
                      "src/spatialjoin", "src/storage")
KEY_API_DIRS = ("src/queue", "src/core")


def _strip_strings(line: str) -> str:
    """Blanks string/char literals so quoted text can't trip a check;
    keeps comments (suppressions live there and are handled separately)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            out.append(line[i:])
            break
        if c in ('"', "'"):
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == '\\' else 1
            i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def _in_dirs(relpath: str, dirs) -> bool:
    return any(relpath == d or relpath.startswith(d + "/") for d in dirs)


def _suppressed(lines, lineno, rule) -> bool:
    token = SUPPRESS_FMT.format(rule=rule)
    lo = max(0, lineno - 1 - SUPPRESS_LOOKBACK)
    return any(token in lines[i] for i in range(lo, lineno))


def check_text(relpath: str, text: str):
    """Runs every check over one file; returns (lineno, rule, msg) tuples.

    `relpath` is the path relative to the repo root with '/' separators —
    the path-scoping rules key off it.
    """
    violations = []
    lines = text.splitlines()
    is_mutex_home = relpath == "src/common/mutex.h"
    in_key_api = _in_dirs(relpath, KEY_API_DIRS)
    in_det = _in_dirs(relpath, DETERMINISTIC_DIRS)

    for lineno, raw_line in enumerate(lines, start=1):
        line = _strip_strings(raw_line)

        if not is_mutex_home and RAW_MUTEX.search(line):
            if not _suppressed(lines, lineno, "raw-mutex"):
                violations.append((
                    lineno, "raw-mutex",
                    "raw std:: lock primitive outside src/common/mutex.h; "
                    "use amdj::Mutex/MutexLock/CondVar so the thread-safety "
                    "analysis sees it"))

        if RAW_PRIORITY_QUEUE.search(line) and \
                not _in_dirs(relpath, ("src/queue",)):
            if not _suppressed(lines, lineno, "raw-priority-queue"):
                violations.append((
                    lineno, "raw-priority-queue",
                    "std::priority_queue outside src/queue/ needs an "
                    "'amdj-tidy: raw-priority-queue-ok' rationale (is this "
                    "really not HybridQueue's job?)"))

        if in_key_api:
            for m in RAW_DOUBLE_PARAM.finditer(line):
                name = m.group(1)
                if KEY_BEARING.search(name) and \
                        not _suppressed(lines, lineno, "raw-double"):
                    violations.append((
                        lineno, "raw-double-key-param",
                        f"parameter '{name}' carries a key/distance but is "
                        f"raw double; take geom::KeyVal or geom::DistVal"))

        if in_det and NONDETERMINISM.search(line):
            if not _suppressed(lines, lineno, "nondet"):
                violations.append((
                    lineno, "nondeterminism",
                    "nondeterministic primitive in the deterministic "
                    "pipeline; join output must stay bit-reproducible "
                    "(use seeded common/random.h Random, common/timer.h)"))
    return violations


def check_file(repo_root: Path, path: Path):
    rel = path.resolve().relative_to(repo_root).as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return [(rel, lineno, rule, msg)
            for lineno, rule, msg in check_text(rel, text)]


def files_from_compile_commands(repo_root: Path, db_path: Path):
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, ValueError) as e:
        print(f"error: cannot read {db_path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = []
    for entry in entries:
        f = Path(entry.get("directory", ".")) / entry["file"] \
            if not Path(entry["file"]).is_absolute() else Path(entry["file"])
        try:
            rel = f.resolve().relative_to(repo_root).as_posix()
        except ValueError:
            continue  # generated/out-of-tree TU (e.g. _deps)
        # tests/ and bench/ are differential-oracle and harness territory
        # (std::priority_queue references, raw-double fixtures); their
        # residue is audited by scripts/check_key_space.py instead.
        if rel.startswith(("build", "third_party", "tests", "bench",
                           "examples")):
            continue
        if f.suffix in CPP_SUFFIXES:
            out.append(f.resolve())
    return out


def self_test() -> int:
    """Seeded-violation cases: every rule must fire where expected and
    honor its suppression. Mirrors check_key_space.py --self-test."""
    cases = [
        # (relpath, text, expected rule IDs in order)
        ("src/core/foo.h", "std::mutex mu_;", ["raw-mutex"]),
        ("src/core/foo.h", "std::lock_guard<std::mutex> l(mu_);",
         ["raw-mutex"]),
        ("src/common/mutex.h", "std::mutex mu_;", []),
        ("src/core/foo.h",
         "// amdj-tidy: raw-mutex-ok — adapter under test\nstd::mutex m;",
         []),
        ("src/core/merge.h", "std::priority_queue<int> q;",
         ["raw-priority-queue"]),
        ("src/queue/hybrid_queue.h", "std::priority_queue<int> q;", []),
        ("src/core/merge.h",
         "// amdj-tidy: raw-priority-queue-ok — bounded head heap\n"
         "std::priority_queue<int> q;", []),
        ("src/core/api.h", "void Insert(double key);",
         ["raw-double-key-param"]),
        ("src/core/api.h", "void Force(uint64_t k, double edmax = 0.0);",
         ["raw-double-key-param"]),
        ("src/core/api.h", "void Insert(geom::KeyVal key);", []),
        ("src/core/api.h", "void Scale(double factor);", []),
        ("src/service/api.h", "void Insert(double key);", []),  # not key-API dir
        ("src/core/api.h",
         "void Emit(double distance);  // amdj-tidy: raw-double-ok — "
         "serialization boundary", []),
        ("src/core/join.cc", "std::random_device rd;", ["nondeterminism"]),
        ("src/core/join.cc",
         "auto t = std::chrono::system_clock::now();", ["nondeterminism"]),
        ("src/common/metrics.cc",
         "auto t = std::chrono::system_clock::now();", []),  # common/ exempt
        ("src/core/join.cc",
         "auto t = std::chrono::steady_clock::now();", []),
        ("src/core/join.cc", "int operand(int x);", []),  # no \brand match
        ("src/core/join.cc",
         'AMDJ_LOG(INFO) << "std::mutex is banned";', []),  # string literal
    ]
    failures = 0
    for relpath, text, expected in cases:
        got = [rule for _, rule, _ in check_text(relpath, text)]
        if got != expected:
            failures += 1
            print(f"self-test FAIL: {relpath}: {text!r}: expected "
                  f"{expected or 'clean'}, got {got or 'clean'}")
    if failures:
        print(f"self-test: {failures}/{len(cases)} cases failed")
        return 2
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main(argv) -> int:
    if "--self-test" in argv:
        return self_test()
    db = None
    paths = []
    it = iter(argv)
    for a in it:
        if a == "--compile-commands":
            db = next(it, None)
            if db is None:
                print("error: --compile-commands needs a path",
                      file=sys.stderr)
                return 2
        elif a.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(a)

    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(p) for p in paths] or [repo_root / "src",
                                         repo_root / "tools"]
    files = set()
    for root in roots:
        if root.is_file():
            files.add(root.resolve())
        elif root.is_dir():
            files.update(p.resolve() for p in root.rglob("*")
                         if p.suffix in CPP_SUFFIXES)
        else:
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
    if db is not None:
        files.update(files_from_compile_commands(repo_root, Path(db)))

    all_violations = []
    for f in sorted(files):
        all_violations.extend(check_file(repo_root, f))
    for rel, lineno, rule, msg in all_violations:
        print(f"{rel}:{lineno}: error: [{rule}] {msg}")
    if all_violations:
        print(f"\namdj_tidy: {len(all_violations)} violation(s) in "
              f"{len(files)} file(s); suppress deliberate uses with an "
              f"'amdj-tidy: <rule>-ok — <rationale>' comment")
        return 1
    print(f"amdj_tidy: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#include "geom/metric.h"

namespace amdj::geom {

const char* ToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "L2";
    case Metric::kL1:
      return "L1";
    case Metric::kLInf:
      return "Linf";
  }
  return "?";
}

}  // namespace amdj::geom

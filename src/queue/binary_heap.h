#ifndef AMDJ_QUEUE_BINARY_HEAP_H_
#define AMDJ_QUEUE_BINARY_HEAP_H_

#include <algorithm>
#include <vector>

namespace amdj::queue {

/// Binary min-heap (for the supplied strict-weak-order "less") with access
/// to the underlying storage, which HybridQueue needs for its split and
/// swap-in operations. `Compare(a, b)` returning true means `a` pops first.
template <typename T, typename Compare>
class BinaryHeap {
 public:
  explicit BinaryHeap(Compare cmp = Compare()) : cmp_(std::move(cmp)) {}

  bool Empty() const { return items_.empty(); }
  size_t Size() const { return items_.size(); }

  void Push(const T& item) {
    items_.push_back(item);
    std::push_heap(items_.begin(), items_.end(), Inverted{cmp_});
  }

  /// Minimum element; heap must be non-empty.
  const T& Top() const { return items_.front(); }

  /// Removes and returns the minimum element; heap must be non-empty.
  T Pop() {
    std::pop_heap(items_.begin(), items_.end(), Inverted{cmp_});
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  /// Moves out every element (unsorted) and empties the heap.
  std::vector<T> TakeAll() {
    std::vector<T> out = std::move(items_);
    items_.clear();
    return out;
  }

  /// Replaces the content with `items` and heapifies, O(n).
  void Assign(std::vector<T> items) {
    items_ = std::move(items);
    std::make_heap(items_.begin(), items_.end(), Inverted{cmp_});
  }

  /// Read-only view of the raw storage (heap order, not sorted).
  const std::vector<T>& Items() const { return items_; }

  void Clear() { items_.clear(); }

 private:
  // std:: heap functions build a max-heap; invert the order for a min-heap.
  struct Inverted {
    Compare cmp;
    bool operator()(const T& a, const T& b) const { return cmp(b, a); }
  };

  Compare cmp_;
  std::vector<T> items_;
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_BINARY_HEAP_H_

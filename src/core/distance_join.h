#ifndef AMDJ_CORE_DISTANCE_JOIN_H_
#define AMDJ_CORE_DISTANCE_JOIN_H_

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/cursor.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

/// \file
/// Umbrella API for the library: run a k-distance join (KDJ) with any of
/// the paper's algorithms, or open an incremental distance join (IDJ)
/// cursor. These entry points also take care of the bookkeeping the raw
/// algorithm classes leave to the caller: attaching the JoinStats sink to
/// the trees' buffer pools and measuring CPU time.

namespace amdj::core {

/// k-distance-join algorithm selector.
enum class KdjAlgorithm {
  kHsKdj,   ///< Hjaltason-Samet baseline (uni-directional expansion).
  kBKdj,    ///< Bidirectional expansion + optimized plane sweep (Sec. 3).
  kAmKdj,   ///< Adaptive multi-stage (Sec. 4.1).
  kSjSort,  ///< Spatial join within true Dmax + external sort.
};

/// Incremental-distance-join algorithm selector.
enum class IdjAlgorithm {
  kHsIdj,  ///< Hjaltason-Samet incremental baseline.
  kAmIdj,  ///< Adaptive multi-stage incremental (Sec. 4.2).
};

/// Stable display name ("HS-KDJ", "B-KDJ", ...).
const char* ToString(KdjAlgorithm a);
const char* ToString(IdjAlgorithm a);

/// Runs a k-distance join: the k pairs (r, s), r in `r`, s in `s`, with the
/// smallest MinDistance(r, s), in non-decreasing order. For kSjSort the
/// true Dmax is first computed with an exact AM-KDJ pre-pass whose cost is
/// *not* charged to `stats` (the paper's "favorable assumption"); use
/// SjSort::Run directly if you already know Dmax.
///
/// `stats` may be null. On success stats->cpu_seconds holds the measured
/// wall time of the join itself.
StatusOr<std::vector<ResultPair>> RunKDistanceJoin(const rtree::RTree& r,
                                                   const rtree::RTree& s,
                                                   uint64_t k,
                                                   KdjAlgorithm algorithm,
                                                   const JoinOptions& options,
                                                   JoinStats* stats);

/// Opens an incremental join cursor. The returned cursor keeps the trees'
/// buffer-pool stats sinks attached for its lifetime and accumulates
/// per-Next() CPU time into `stats`.
StatusOr<std::unique_ptr<DistanceJoinCursor>> OpenIncrementalJoin(
    const rtree::RTree& r, const rtree::RTree& s, IdjAlgorithm algorithm,
    const JoinOptions& options, JoinStats* stats);

/// The true Dmax oracle: distance of the k-th nearest pair (0 when the
/// Cartesian product has fewer than k pairs... then the largest available
/// distance; 0 if there are no pairs at all). Computed with AM-KDJ.
StatusOr<double> ComputeTrueDmax(const rtree::RTree& r, const rtree::RTree& s,
                                 uint64_t k, const JoinOptions& options);

}  // namespace amdj::core

#endif  // AMDJ_CORE_DISTANCE_JOIN_H_

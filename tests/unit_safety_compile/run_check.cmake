# ctest driver for the unit-safety negative-compile harness: configures
# the sibling mini-project (CMakeLists.txt here) into a scratch directory
# with the same compiler as the main build. The configure step runs the
# try_compile expectations; its failure fails this test. Inputs:
#   -DCHECK_SOURCE_DIR=  this directory
#   -DCHECK_BINARY_DIR=  scratch build directory (recreated every run)
#   -DAMDJ_SOURCE_DIR=   repository root (for -Isrc)
#   -DCXX_COMPILER=      CMAKE_CXX_COMPILER of the enclosing build

file(REMOVE_RECURSE "${CHECK_BINARY_DIR}")
file(MAKE_DIRECTORY "${CHECK_BINARY_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND}
          -S "${CHECK_SOURCE_DIR}"
          -B "${CHECK_BINARY_DIR}"
          -DAMDJ_SOURCE_DIR=${AMDJ_SOURCE_DIR}
          -DCMAKE_CXX_COMPILER=${CXX_COMPILER}
  RESULT_VARIABLE _result
  OUTPUT_VARIABLE _output
  ERROR_VARIABLE _errors)

message("${_output}")
if(_errors)
  message("${_errors}")
endif()

if(NOT _result EQUAL 0)
  message(FATAL_ERROR "unit-safety compile check failed (see above)")
endif()

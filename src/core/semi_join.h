#ifndef AMDJ_CORE_SEMI_JOIN_H_
#define AMDJ_CORE_SEMI_JOIN_H_

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// Strategy for the distance semi-join.
enum class SemiJoinStrategy : uint8_t {
  /// Drive the adaptive incremental distance join (AM-IDJ) and keep the
  /// first-seen partner per R object. Excellent when nearest partners are
  /// close relative to data spread (results also arrive in global distance
  /// order); degrades when a few isolated R objects force the cutoff wide.
  kIncrementalJoin = 0,
  /// One best-first nearest-neighbor search in S per R object. Cost is
  /// |R| independent searches: robust, embarrassingly simple, but re-reads
  /// S's upper levels once per object (the buffer pool absorbs most of
  /// it).
  kPerObjectNn = 1,
};

/// One semi-join result: an R object with its nearest S partner.
struct SemiJoinResult {
  uint32_t r_id = 0;
  uint32_t s_id = 0;
  double distance = 0.0;
};

/// The *distance semi-join* of Hjaltason & Samet (SIGMOD'98, the paper's
/// baseline reference [13]): for every object of R, its nearest object in
/// S, reported in non-decreasing distance order. Requires R's object ids
/// to be unique (S ids may repeat freely).
///
/// `options.metric` and `options.exclude_same_id` apply (the latter makes
/// this an all-nearest-*other*-neighbor query for self semi-joins).
StatusOr<std::vector<SemiJoinResult>> DistanceSemiJoin(
    const rtree::RTree& r, const rtree::RTree& s,
    const JoinOptions& options, SemiJoinStrategy strategy,
    JoinStats* stats);

/// k-nearest-neighbors join: for every object of R, its `neighbors`
/// nearest objects in S (fewer if |S| is smaller), reported in
/// non-decreasing distance order overall. DistanceSemiJoin is the
/// neighbors = 1 case.
StatusOr<std::vector<SemiJoinResult>> KnnJoin(
    const rtree::RTree& r, const rtree::RTree& s, uint64_t neighbors,
    const JoinOptions& options, SemiJoinStrategy strategy,
    JoinStats* stats);

}  // namespace amdj::core

#endif  // AMDJ_CORE_SEMI_JOIN_H_

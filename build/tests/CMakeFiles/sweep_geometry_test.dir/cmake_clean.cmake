file(REMOVE_RECURSE
  "CMakeFiles/sweep_geometry_test.dir/sweep_geometry_test.cc.o"
  "CMakeFiles/sweep_geometry_test.dir/sweep_geometry_test.cc.o.d"
  "sweep_geometry_test"
  "sweep_geometry_test.pdb"
  "sweep_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

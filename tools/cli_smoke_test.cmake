# Exercises the CLI end to end; any non-zero exit fails the test.
function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK_DIR})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

run(${CLI} generate --kind=clusters --n=800 --seed=1 --out=cli_r.ds)
run(${CLI} generate --kind=rects --n=600 --seed=2 --out=cli_s.ds)
run(${CLI} info --data=cli_r.ds)
run(${CLI} join --r=cli_r.ds --s=cli_s.ds --k=20 --algo=am --stats)
run(${CLI} join --r=cli_r.ds --s=cli_r.ds --k=10 --self --metric=l1)
run(${CLI} join --r=cli_r.ds --s=cli_s.ds --k=10 --estimator=histogram)
run(${CLI} stream --r=cli_r.ds --s=cli_s.ds --batch=5 --batches=3)
run(${CLI} semijoin --r=cli_r.ds --s=cli_s.ds --strategy=nn --limit=5)
run(${CLI} knn --data=cli_r.ds --x=500000 --y=500000 --k=4)
run(${CLI} estimate --r=cli_r.ds --s=cli_s.ds --k=200)

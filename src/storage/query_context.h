#ifndef AMDJ_STORAGE_QUERY_CONTEXT_H_
#define AMDJ_STORAGE_QUERY_CONTEXT_H_

#include <cstdint>

#include "common/stats.h"

namespace amdj {
class Tracer;  // common/trace.h
}  // namespace amdj

namespace amdj::storage {

/// The per-query observability wiring a thread carries while it executes
/// one query: the query's JoinStats sink, its tracer, and the windowed
/// hit-ratio counters the BufferPool samples into that tracer. Owned by a
/// QueryAttributionScope on the executing thread's stack; the buffer pool
/// reads it through QueryAttributionScope::Current().
///
/// `stats`/`tracer` may both be null — an *active* scope with null members
/// means "this thread is running a query that wants no attribution", which
/// deliberately shadows any pool-wide sink (a concurrent query must never
/// leak accesses into another query's counters).
struct QueryAttribution {
  JoinStats* stats = nullptr;
  Tracer* tracer = nullptr;
  /// Windowed buffer-hit-ratio sampling state (BufferPool::kTraceWindow).
  /// Lives here, not in the pool, so concurrent queries sample their own
  /// windows. Touched only by the owning thread.
  uint64_t window_accesses = 0;
  uint64_t window_hits = 0;
};

/// RAII registration of the calling thread's query attribution. While a
/// scope is alive, every BufferPool access performed by this thread (and
/// by parallel-executor workers expanding on its behalf — BatchExpander
/// re-installs the coordinator's attribution on each worker task) is
/// counted against the scope's JoinStats instead of the pool-wide sink.
///
/// Scopes nest (a join that internally runs an uncharged oracle pass can
/// push a detached scope); destruction restores the previous scope.
/// Per-thread, so N threads running N queries over one shared BufferPool
/// each keep exact node-access / hit-ratio accounting — the concurrency
/// model the JoinService (src/service/) is built on.
class QueryAttributionScope {
 public:
  QueryAttributionScope(JoinStats* stats, Tracer* tracer);
  ~QueryAttributionScope();

  QueryAttributionScope(const QueryAttributionScope&) = delete;
  QueryAttributionScope& operator=(const QueryAttributionScope&) = delete;

  /// The innermost scope active on the calling thread; nullptr when the
  /// thread runs outside any query (pool-wide sinks then apply).
  static QueryAttribution* Current();

 private:
  QueryAttribution attribution_;
  QueryAttribution* previous_;
};

}  // namespace amdj::storage

#endif  // AMDJ_STORAGE_QUERY_CONTEXT_H_

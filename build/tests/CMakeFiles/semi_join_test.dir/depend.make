# Empty dependencies file for semi_join_test.
# This may be replaced when dependencies are built.

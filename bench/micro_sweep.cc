// Microbenchmarks for the sweep machinery: sweeping-index evaluation (the
// paper argues it is "a trivial cost"; verify) and one full plane sweep
// versus the Cartesian product it replaces.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/plane_sweeper.h"
#include "core/sweep_plan.h"
#include "geom/metric.h"
#include "geom/sweep_geometry.h"

namespace amdj {
namespace {

void BM_SweepingIndex(benchmark::State& state) {
  Random rng(1);
  std::vector<std::pair<geom::Rect, geom::Rect>> pairs;
  for (int i = 0; i < 1024; ++i) {
    auto rect = [&] {
      const double x = rng.Uniform(0, 1000);
      const double y = rng.Uniform(0, 1000);
      return geom::Rect(x, y, x + rng.Uniform(1, 100),
                        y + rng.Uniform(1, 100));
    };
    pairs.emplace_back(rect(), rect());
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [r, s] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(geom::SweepingIndex(r, s, 25.0, 0));
    benchmark::DoNotOptimize(geom::SweepingIndex(r, s, 25.0, 1));
  }
}
BENCHMARK(BM_SweepingIndex);

void BM_ChooseSweepPlan(benchmark::State& state) {
  Random rng(2);
  const geom::Rect r(0, 0, 120, 400);
  const geom::Rect s(100, 50, 260, 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ChooseSweepPlan(
        r, s, geom::DistVal(20.0), core::SweepStrategy::kOptimized));
  }
}
BENCHMARK(BM_ChooseSweepPlan);

std::vector<core::PairRef> MakeRefs(uint64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<core::PairRef> refs(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 10000);
    const double y = rng.Uniform(0, 10000);
    refs[i].rect = geom::Rect(x, y, x + 10, y + 10);
    refs[i].id = static_cast<uint32_t>(i);
  }
  return refs;
}

void BM_PlaneSweep(benchmark::State& state) {
  const auto left = MakeRefs(static_cast<uint64_t>(state.range(0)), 3);
  const auto right = MakeRefs(static_cast<uint64_t>(state.range(0)), 4);
  const double cutoff = static_cast<double>(state.range(1));
  const core::SweepPlan plan{0, geom::SweepDirection::kForward};
  for (auto _ : state) {
    uint64_t emitted = 0;
    core::PlaneSweep(left, right, plan, &cutoff, nullptr,
                     [&](const core::PairRef&, const core::PairRef&,
                         double) { ++emitted; });
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_PlaneSweep)
    ->Args({113, 50})      // typical node pair, tight cutoff
    ->Args({113, 10000});  // loose cutoff: degenerates toward Cartesian

// The pre-vectorized join hot path: axis sweep plus a scalar MinDist per
// axis-surviving candidate in the callback. Compare with BM_PlaneSweepKeyed,
// which does the same logical work through the batch kernels.
void BM_PlaneSweepScalarDist(benchmark::State& state) {
  const auto left = MakeRefs(static_cast<uint64_t>(state.range(0)), 3);
  const auto right = MakeRefs(static_cast<uint64_t>(state.range(0)), 4);
  const double cutoff = static_cast<double>(state.range(1));
  const geom::KeyVal cutoff_key =
      geom::DistanceToKey(geom::DistVal(cutoff), geom::Metric::kL2);
  const core::SweepPlan plan{0, geom::SweepDirection::kForward};
  for (auto _ : state) {
    uint64_t emitted = 0;
    core::PlaneSweep(left, right, plan, &cutoff, nullptr,
                     [&](const core::PairRef& l, const core::PairRef& r,
                         double) {
                       const geom::KeyVal key = geom::MinDistanceKey(
                           l.rect, r.rect, geom::Metric::kL2);
                       if (key <= cutoff_key) ++emitted;
                     });
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_PlaneSweepScalarDist)
    ->Args({113, 50})      // typical node pair, tight cutoff
    ->Args({113, 10000});  // loose cutoff: degenerates toward Cartesian

void BM_PlaneSweepKeyed(benchmark::State& state) {
  const auto left = MakeRefs(static_cast<uint64_t>(state.range(0)), 3);
  const auto right = MakeRefs(static_cast<uint64_t>(state.range(0)), 4);
  const double cutoff = static_cast<double>(state.range(1));
  const geom::KeyVal cutoff_key =
      geom::DistanceToKey(geom::DistVal(cutoff), geom::Metric::kL2);
  const core::SweepPlan plan{0, geom::SweepDirection::kForward};
  core::KeyedSweepSpec spec;
  spec.metric = geom::Metric::kL2;
  spec.axis_cutoff_key = &cutoff_key;
  spec.dist_cutoff_key = &cutoff_key;
  for (auto _ : state) {
    uint64_t emitted = 0;
    core::PlaneSweepKeyed(left, right, plan, spec, nullptr,
                          [&](const core::PairRef&, const core::PairRef&,
                              geom::KeyVal) { ++emitted; });
    benchmark::DoNotOptimize(emitted);
  }
}
BENCHMARK(BM_PlaneSweepKeyed)
    ->Args({113, 50})      // typical node pair, tight cutoff
    ->Args({113, 10000});  // loose cutoff: degenerates toward Cartesian

void BM_CartesianBaseline(benchmark::State& state) {
  const auto left = MakeRefs(113, 3);
  const auto right = MakeRefs(113, 4);
  for (auto _ : state) {
    double sum = 0;
    for (const auto& l : left) {
      for (const auto& r : right) {
        sum += geom::MinDistance(l.rect, r.rect);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CartesianBaseline);

}  // namespace
}  // namespace amdj

BENCHMARK_MAIN();

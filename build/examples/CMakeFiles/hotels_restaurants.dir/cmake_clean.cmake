file(REMOVE_RECURSE
  "CMakeFiles/hotels_restaurants.dir/hotels_restaurants.cc.o"
  "CMakeFiles/hotels_restaurants.dir/hotels_restaurants.cc.o.d"
  "hotels_restaurants"
  "hotels_restaurants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotels_restaurants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/city_infrastructure.dir/city_infrastructure.cc.o"
  "CMakeFiles/city_infrastructure.dir/city_infrastructure.cc.o.d"
  "city_infrastructure"
  "city_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

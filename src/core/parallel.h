#ifndef AMDJ_CORE_PARALLEL_H_
#define AMDJ_CORE_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <future>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_checker.h"
#include "common/thread_pool.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "core/sweep_plan.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// One node-pair expansion scheduled on the parallel executor, with the
/// knobs that distinguish the algorithms' sweep variants:
///   - B-KDJ / AM-KDJ compensation: dynamic cutoff — both the axis bound
///     and the real-distance filter track the shared (shrinking) cutoff.
///   - AM-KDJ aggressive stage: a *static* axis cutoff (the eDmax in
///     effect when the pair was popped — it defines the examined sweep
///     prefix that compensation bookkeeping must describe exactly), while
///     the real-distance filter still tracks the shared qDmax.
///   - Compensation re-sweeps: a fixed plan (the stage-one axis/direction,
///     so the children's sweep order is reproduced) plus `skip_below`
///     skipping the already-examined prefix.
struct ExpandTask {
  PairEntry pair;
  /// >= 0: static axis cutoff key for this sweep; < 0: track the shared
  /// cutoff. Key space throughout (geom::KeyVal), like every cutoff below.
  geom::KeyVal static_axis_cutoff{-1.0};
  /// Skip candidates with axis-separation key <= skip_below (the sweep
  /// prefix an earlier stage already examined).
  geom::KeyVal skip_below{-1.0};
  /// Use `plan` instead of choosing one (compensation re-sweeps).
  bool has_fixed_plan = false;
  SweepPlan plan;
};

/// Output of one expansion, produced on a worker and consumed by the
/// coordinator. Buffers are owned by the executor and reused across rounds
/// (one slot per batch position), so the steady state allocates nothing.
struct ExpandSlot {
  std::vector<PairRef> left;
  std::vector<PairRef> right;
  /// Candidate child pairs that survived the worker-side filters (real
  /// distance within the shared cutoff as loaded at examination time —
  /// possibly stale, so the coordinator re-filters before pushing).
  std::vector<PairEntry> candidates;
  /// The sweep plan actually used (recorded for compensation bookkeeping).
  SweepPlan plan;
  /// The sweep's axis-covered flag: false if some suffix was axis-pruned.
  bool covered = true;
  /// Per-worker counters, merged into the main JoinStats at round end so
  /// the hot path never touches shared counters.
  JoinStats stats;
  Status status;
};

/// Folds a slot's worker-side counters into `stats` and resets them.
/// Deliberately *not* JoinStats::Add: workers populate only the expansion
/// and sweep counters, while the I/O counters of `stats` are concurrently
/// incremented by still-running workers through the buffer-pool stats sink
/// — Add() would read-modify-write those racing fields on the coordinator
/// thread.
inline void FoldSlotStats(ExpandSlot* slot, JoinStats* stats) {
  stats->node_expansions += slot->stats.node_expansions;
  stats->real_distance_computations +=
      slot->stats.real_distance_computations;
  stats->axis_distance_computations +=
      slot->stats.axis_distance_computations;
  slot->stats.Reset();
}

/// True if pushed entry `e` exactly ties some task in tasks[first..] on
/// key and precedes at least one of them in main-queue order. Such a
/// child would have been processed by the sequential loop *before* that
/// task (the comparator's tie-break — objects first, then ids — ranks it
/// earlier), so the round must be aborted and the remaining tasks
/// re-queued. Strictly-smaller keys are safe: emission stops at the
/// minimum queued node pair, and every emittable object below that
/// minimum already has its parent expanded. `tasks` is sorted in
/// main-queue order, so the tied run is contiguous and its last element
/// is the tie-break maximum.
inline bool TiesAheadOfPendingTask(const PairEntry& e,
                                   const std::vector<ExpandTask>& tasks,
                                   size_t first,
                                   const PairEntryCompare& before) {
  size_t lo = first;
  size_t hi = tasks.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (tasks[mid].pair.key < e.key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == tasks.size() || tasks[lo].pair.key != e.key) {
    return false;
  }
  size_t last = lo;
  while (last + 1 < tasks.size() && tasks[last + 1].pair.key == e.key) {
    ++last;
  }
  return before(e, tasks[last].pair);
}

/// The parallel join executor's fan-out/merge engine (see DESIGN.md,
/// "Concurrency model"). A round works as follows:
///
///   1. The coordinating algorithm pops a batch of node pairs from the
///      main queue and calls Run().
///   2. Every task is expanded on a ThreadPool worker: fetch both child
///      lists, choose (or reuse) a sweep plan, plane-sweep into the
///      slot's candidate buffer. Workers load the shared atomic cutoff
///      before each distance comparison; stale reads are safe because the
///      cutoff only shrinks — a stale (larger) value admits extra
///      candidates but never drops a qualifying one.
///   3. The coordinator consumes slots *in task order* as workers finish,
///      invoking `merge` for each on the calling thread. The merge
///      callback re-filters candidates against the exact, current cutoff,
///      pushes survivors into the main queue / cutoff tracker, and calls
///      Tighten() so in-flight workers see the shrunk bound.
///
/// Exactness: every candidate dropped by any (possibly stale) cutoff has
/// real distance > some value that is >= the final k-th result distance,
/// so the emitted top-k — selected later, in strict queue order, by the
/// coordinator — is identical to the sequential run's.
///
/// Shared-cutoff protocol (concurrency contract): `shared_cutoff_` has
/// exactly one writer — the coordinator, via Run (round init) and Tighten
/// (merge callback) — and many relaxed readers (workers). The store may be
/// plain (non-RMW) *only because* of that single-writer discipline plus
/// cutoff monotonicity (it only shrinks within a round, so any stale read
/// is an admissible upper bound). The single-writer half of the contract
/// is enforced at runtime: Run / Tighten / ReportRound check the
/// coordinator confinement owner (common/thread_checker.h) and abort on a
/// cross-thread call. `cancelled_` follows the same single-writer shape.
/// Everything else (slots_, futures_, batch_limit_) is coordinator-only
/// state handed to exactly one worker per round slot, synchronized by the
/// Submit/future-wait pair.
class BatchExpander {
 public:
  /// `r`, `s`, and `options` must outlive the expander. Spawns
  /// options.parallelism workers.
  BatchExpander(const rtree::RTree& r, const rtree::RTree& s,
                const JoinOptions& options);

  /// Maximum tasks per round (parallelism * batch_factor).
  size_t batch_target() const { return batch_target_; }

  /// Current adaptive batch limit (<= batch_target()). Batching node pairs
  /// is speculation: the sequential best-first loop may never expand a
  /// batched sibling because emissions in between shrink the cutoff below
  /// its distance. The limit starts at 1 and doubles after every round
  /// with no wasted task, so wide same-distance frontiers fan out across
  /// the pool, while descent phases — where speculation loses — collapse
  /// back to best-first, one expansion per round.
  size_t batch_limit() const { return batch_limit_; }

  /// Feedback after a round: `wasted` of the round's `n` tasks turned out
  /// useless (their distance exceeded the post-round cutoff, so the
  /// sequential loop would have skipped them). Grows the limit on clean
  /// rounds, shrinks it to the useful count otherwise.
  void ReportRound(size_t n, size_t wasted) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "BatchExpander::ReportRound off the coordinator thread";
    if (wasted == 0) {
      batch_limit_ = std::min(batch_limit_ * 2, batch_target_);
    } else {
      batch_limit_ = std::max<size_t>(1, n - wasted);
    }
  }

  /// Expands `tasks` (at most batch_target()) on the pool, initializing
  /// the shared cutoff to `initial_cutoff`, and calls
  /// `merge(task_index, slot)` once per task, in task order, on the
  /// calling thread. A merge returning false stops further merging — the
  /// remaining slots are discarded (the caller re-pushes their tasks) —
  /// used to abort a round whose merged children would overtake a
  /// not-yet-merged task in queue order (tie plateaus; see DESIGN.md).
  /// Every worker is joined before returning regardless. Returns the
  /// first non-OK worker or merge status.
  Status Run(const std::vector<ExpandTask>& tasks,
             geom::KeyVal initial_cutoff,
             const std::function<StatusOr<bool>(size_t, ExpandSlot*)>& merge);

  /// Publishes a (smaller) cutoff to in-flight workers. Called by the
  /// merge callback after the exact cutoff shrinks. Monotone by contract:
  /// callers only pass values from a shrinking source, so a plain store
  /// suffices (there is exactly one writer, the coordinator — enforced,
  /// see the shared-cutoff protocol in the class comment).
  void Tighten(geom::KeyVal cutoff) {
    AMDJ_CHECK(owner_.CalledOnValidThread())
        << "BatchExpander::Tighten off the coordinator thread";
    shared_cutoff_.store(cutoff, std::memory_order_relaxed);
  }

 private:
  void ExpandOne(const ExpandTask& task, ExpandSlot* slot);

  const rtree::RTree& r_;
  const rtree::RTree& s_;
  const JoinOptions& options_;
  size_t batch_target_;
  /// Coordinator-only (read/written between rounds, never by workers).
  size_t batch_limit_ = 1;
  /// Single writer (coordinator), relaxed readers (workers); see the
  /// shared-cutoff protocol in the class comment. atomic<KeyVal> is
  /// lock-free exactly like atomic<double> (geom/units.h).
  std::atomic<geom::KeyVal> shared_cutoff_;
  /// Set when a merge stops the round early: queued-but-unstarted workers
  /// skip their (discarded) expansion instead of fetching children. Same
  /// single-writer shape as shared_cutoff_.
  std::atomic<bool> cancelled_{false};
  ThreadPool pool_;
  /// One slot per batch position: each is written by exactly one worker
  /// per round and read by the coordinator only after that worker's
  /// future resolves.
  std::vector<ExpandSlot> slots_;
  std::vector<std::future<void>> futures_;
  /// Coordinator confinement owner (Run / Tighten / ReportRound).
  ThreadChecker owner_;
};

}  // namespace amdj::core

#endif  // AMDJ_CORE_PARALLEL_H_

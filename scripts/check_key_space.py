#!/usr/bin/env python3
"""Lint for the distance-space / key-space unit discipline (PR 2).

Internally, comparisons run in *key space* (`geom::DistanceToKey`: squared
distance under L2), while emitted results and user-facing cutoffs are in
*distance space* (`geom::KeyToDistance`). Mixing the two compiles fine --
both are `double` -- and silently produces wrong join results, so the
convention is: key-space variables carry a `_key` suffix, distance-space
variables don't.

Since PR 10 the library and CLI (src/, tools/) enforce the discipline in
the type system (geom::KeyVal / geom::DistVal, geom/units.h): a mix-up
there is a compile error, so this lint no longer scans them by default
and instead audits the *residue* that deliberately stays raw-double --
tests and benches (differential oracles, brute-force fixtures, gtest
comparisons against double references) and the raw-view boundary sites
(`.raw()` escapes for SoA kernels, spill pages, exposition). Pass paths
explicitly to scan anything else.

Checks (line-based heuristics over C++ sources):

  R1  a `*_key` variable assigned from `KeyToDistance(...)`
      (the result is a distance; the name claims key space)
  R2  a `*_dist` / `*_distance` / `dist` / `distance` variable assigned
      from `DistanceToKey(...)` / `DistanceToKeyCutoff(...)`
      (the result is a key; the name claims distance space)
  R3  a comparison / min / max mixing a `*_key` identifier with a
      `*_dist` / `*_distance` / `dist` / `distance` identifier
      (comparing values in different units)

Suppress a deliberate mix by putting `key-space-ok` in a comment on the
offending line.

Usage:
  scripts/check_key_space.py [paths...]   # default: tests/ bench/ examples/
  scripts/check_key_space.py --self-test

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

import re
import sys
from pathlib import Path

SUPPRESS = "key-space-ok"
CPP_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
KEY_TO_DIST = re.compile(r"\bKeyToDistance\s*\(")
DIST_TO_KEY = re.compile(r"\bDistanceToKey(?:Cutoff)?\s*\(")
# `name = <expr>` where <expr> starts with (geom::)KeyToDistance(...).
ASSIGN_FROM_KEY_TO_DIST = re.compile(
    r"\b(\w+)\s*[=({]\s*(?:geom::)?KeyToDistance\s*\(")
ASSIGN_FROM_DIST_TO_KEY = re.compile(
    r"\b(\w+)\s*[=({]\s*(?:geom::)?DistanceToKey(?:Cutoff)?\s*\(")
COMPARISON = re.compile(r"[<>]=?|[=!]=|\bstd::min\b|\bstd::max\b")


def is_key_space(ident: str) -> bool:
    return ident.endswith("_key")


def is_distance_space(ident: str) -> bool:
    # `_key` wins: `dist_key` is a key-space name for a distance-derived
    # quantity, which is exactly what the suffix discipline asks for.
    if is_key_space(ident):
        return False
    return (ident in ("dist", "distance")
            or ident.endswith("_dist")
            or ident.endswith("_distance"))


def strip_strings_and_comments(line: str) -> str:
    """Blanks string/char literals and trailing `//` comments so tracing
    labels like "dist_key" don't trip the identifier scan."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            break
        if c in ('"', "'"):
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == '\\' else 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def check_line(line: str):
    """Returns a list of (rule, message) violations for one source line."""
    if SUPPRESS in line:
        return []
    code = strip_strings_and_comments(line)
    violations = []

    m = ASSIGN_FROM_KEY_TO_DIST.search(code)
    if m and is_key_space(m.group(1)):
        violations.append((
            "R1", f"'{m.group(1)}' holds a KeyToDistance result (distance "
                  f"space) but is named with the key-space `_key` suffix"))

    m = ASSIGN_FROM_DIST_TO_KEY.search(code)
    if m and is_distance_space(m.group(1)):
        violations.append((
            "R2", f"'{m.group(1)}' holds a DistanceToKey result (key space) "
                  f"but is named as a distance"))

    if COMPARISON.search(code):
        idents = set(IDENT.findall(code))
        keys = sorted(i for i in idents if is_key_space(i))
        dists = sorted(i for i in idents if is_distance_space(i))
        if keys and dists:
            violations.append((
                "R3", f"comparison mixes key-space {keys} with "
                      f"distance-space {dists}"))
    return violations


def check_file(path: Path):
    violations = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for lineno, line in enumerate(text.splitlines(), start=1):
        for rule, msg in check_line(line):
            violations.append((path, lineno, rule, msg, line.strip()))
    return violations


def self_test() -> int:
    cases = [
        # (line, expected rule or None)
        ("const double d = geom::KeyToDistance(c.key, metric);", None),
        ("const double dmax_key = geom::DistanceToKeyCutoff(dmax, m);", None),
        ("double bad_key = geom::KeyToDistance(c.key, metric);", "R1"),
        ("double bad_key(geom::KeyToDistance(c.key, metric));", "R1"),
        ("const double dist = geom::DistanceToKey(x);", "R2"),
        ("double cutoff_dist = geom::DistanceToKeyCutoff(dmax, m);", "R2"),
        ("if (dist_key <= axis_cutoff_key) {", None),
        ("if (dist_key <= dmax_distance) {", "R3"),
        ("const double lo = std::min(lower_bound_key, best_dist);", "R3"),
        ("if (dist < cutoff) {", None),
        # Suppression and literal-stripping.
        ("if (dist_key <= dmax_distance) {  // key-space-ok: boundary", None),
        ('tracer->Counter("best_dist", dist_key);', None),
        ("for (size_t i = 0; i < n; ++i) {", None),
    ]
    failures = 0
    for line, expected in cases:
        got = [rule for rule, _ in check_line(line)]
        ok = (got == [] if expected is None else got == [expected])
        if not ok:
            failures += 1
            print(f"self-test FAIL: {line!r}: expected "
                  f"{expected or 'clean'}, got {got or 'clean'}")
    if failures:
        print(f"self-test: {failures}/{len(cases)} cases failed")
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main(argv) -> int:
    if "--self-test" in argv:
        return self_test()
    if any(a.startswith("-") for a in argv):
        print(__doc__, file=sys.stderr)
        return 2

    repo_root = Path(__file__).resolve().parent.parent
    # Default: the not-yet-strongly-typed residue. src/ and tools/ are
    # covered by the geom::KeyVal/geom::DistVal type system (and by
    # tools/amdj_tidy.py raw-double-key-param), so scanning them here
    # would double-report on every sanctioned raw-view boundary.
    roots = [Path(a) for a in argv] or [repo_root / "tests",
                                        repo_root / "bench",
                                        repo_root / "examples"]
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in CPP_SUFFIXES)
        else:
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2

    all_violations = []
    for f in files:
        all_violations.extend(check_file(f))
    for path, lineno, rule, msg, text in all_violations:
        print(f"{path}:{lineno}: [{rule}] {msg}\n    {text}")
    if all_violations:
        print(f"\ncheck_key_space: {len(all_violations)} violation(s) in "
              f"{len(files)} file(s); suppress deliberate mixes with a "
              f"'{SUPPRESS}' comment")
        return 1
    print(f"check_key_space: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

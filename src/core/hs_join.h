#ifndef AMDJ_CORE_HS_JOIN_H_
#define AMDJ_CORE_HS_JOIN_H_

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/cursor.h"
#include "core/options.h"
#include "core/pair_entry.h"
#include "core/qdmax_tracker.h"
#include "queue/hybrid_queue.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// Main-queue type shared by all distance-join algorithms.
using MainQueue = queue::HybridQueue<PairEntry, PairEntryCompare>;

/// Builds main-queue options (memory budget, spill disk, Eq.-3 boundary
/// function) from the join options and tree metadata.
MainQueue::Options MakeMainQueueOptions(const rtree::RTree& r,
                                        const rtree::RTree& s,
                                        const JoinOptions& options);

/// The main-queue comparator implied by the options' tie-break policy.
inline PairEntryCompare MakeMainQueueCompare(const JoinOptions& options) {
  return PairEntryCompare{options.tie_break == TieBreak::kObjectsFirst};
}

/// Hjaltason & Samet's k-distance join (SIGMOD'98), the paper's HS-KDJ
/// baseline: top-down traversal with *uni-directional* node expansion — a
/// dequeued pair <r, s> pairs the children of one node with the other node
/// as a whole — pruned by the distance queue's qDmax.
class HsKdj {
 public:
  /// Returns the k nearest object pairs in non-decreasing distance order
  /// (fewer if the Cartesian product is smaller). `stats` may be null.
  static StatusOr<std::vector<ResultPair>> Run(const rtree::RTree& r,
                                               const rtree::RTree& s,
                                               uint64_t k,
                                               const JoinOptions& options,
                                               JoinStats* stats);
};

/// Hjaltason & Samet's incremental distance join (HS-IDJ): the same
/// uni-directional traversal without a distance queue, producing pairs one
/// at a time.
class HsIdjCursor : public DistanceJoinCursor {
 public:
  /// Neither tree nor stats ownership is taken; both must outlive the
  /// cursor. `stats` may be null.
  HsIdjCursor(const rtree::RTree& r, const rtree::RTree& s,
              const JoinOptions& options, JoinStats* stats);

  Status Next(ResultPair* out, bool* done) override;
  uint64_t produced() const override { return produced_; }

 private:
  const rtree::RTree& r_;
  const rtree::RTree& s_;
  JoinOptions options_;
  JoinStats* stats_;
  JoinStats local_stats_;
  MainQueue queue_;
  /// Expansion scratch, reused across Next() calls.
  std::vector<PairRef> children_;
  bool primed_ = false;
  uint64_t produced_ = 0;
};

namespace internal_hs {

/// Uni-directional expansion shared by HS-KDJ and HS-IDJ: expands the
/// higher-level (tie: larger-area) node side of `pair` against the other
/// side as a whole, pushing every child pair with distance <= `cutoff`.
/// Counts one real distance computation per child. `tracker` (nullable for
/// IDJ) receives every push. `scratch` is a caller-owned child buffer,
/// cleared on entry — hoist it out of the expansion loop so the capacity
/// is reused across calls.
Status ExpandUniDirectional(const rtree::RTree& r, const rtree::RTree& s,
                            const PairEntry& pair, geom::KeyVal cutoff,
                            const JoinOptions& options, MainQueue* queue,
                            QdmaxTracker* tracker, JoinStats* stats,
                            std::vector<PairRef>* scratch);

}  // namespace internal_hs

}  // namespace amdj::core

#endif  // AMDJ_CORE_HS_JOIN_H_

#include "core/dmax_estimator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "geom/rect.h"
#include "workload/generators.h"

namespace amdj::core {
namespace {

using geom::Rect;

TEST(DmaxEstimatorTest, RhoMatchesEquation3) {
  // area(R cap S) = 100x100, |R| = 50, |S| = 20.
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  EXPECT_NEAR(e.rho(), 10000.0 / (M_PI * 50 * 20), 1e-12);
}

TEST(DmaxEstimatorTest, InitialEstimateScalesWithSqrtK) {
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  const double d1 = e.InitialEstimate(1).raw();
  const double d4 = e.InitialEstimate(4).raw();
  const double d100 = e.InitialEstimate(100).raw();
  EXPECT_NEAR(d4, 2.0 * d1, 1e-9);
  EXPECT_NEAR(d100, 10.0 * d1, 1e-9);
  EXPECT_NEAR(d1, std::sqrt(e.rho()), 1e-12);
}

TEST(DmaxEstimatorTest, PartialOverlapUsesIntersectionArea) {
  // R = [0,100]^2, S = [50,150]x[0,100]: intersection 50x100.
  DmaxEstimator e(Rect(0, 0, 100, 100), 10, Rect(50, 0, 150, 100), 10);
  EXPECT_NEAR(e.rho(), 5000.0 / (M_PI * 100), 1e-12);
}

TEST(DmaxEstimatorTest, DisjointBoundsAddTheGap) {
  // Gap of 300 between the two squares: no pair can be closer.
  DmaxEstimator e(Rect(0, 0, 100, 100), 10, Rect(400, 0, 500, 100), 10);
  EXPECT_GE(e.InitialEstimate(1).raw(), 300.0);
}

TEST(DmaxEstimatorTest, DegenerateInputsStayFinite) {
  // Both datasets a single point: area 0 fallback.
  DmaxEstimator e(Rect(5, 5, 5, 5), 1, Rect(5, 5, 5, 5), 1);
  EXPECT_TRUE(std::isfinite(e.InitialEstimate(100).raw()));
  EXPECT_GT(e.rho(), 0.0);
}

TEST(DmaxEstimatorTest, ArithmeticCorrectionEquation4) {
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  const double d =
      e.ArithmeticCorrection(100, 40, geom::DistVal(3.0)).raw();
  EXPECT_NEAR(d, std::sqrt(9.0 + 60 * e.rho()), 1e-12);
  // k0 >= k: nothing to extrapolate.
  EXPECT_EQ(e.ArithmeticCorrection(100, 100, geom::DistVal(3.0)),
            geom::DistVal(3.0));
}

TEST(DmaxEstimatorTest, GeometricCorrectionEquation5) {
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  EXPECT_NEAR(e.GeometricCorrection(100, 25, geom::DistVal(3.0)).raw(),
              3.0 * 2.0, 1e-12);
  // Zero observed distance falls back to the arithmetic form.
  EXPECT_NEAR(e.GeometricCorrection(100, 25, geom::DistVal(0.0)).raw(),
              e.ArithmeticCorrection(100, 25, geom::DistVal(0.0)).raw(),
              1e-12);
}

TEST(DmaxEstimatorTest, CombinedCorrectionPolicies) {
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  const geom::DistVal two(2.0);
  const geom::DistVal a = e.ArithmeticCorrection(1000, 10, two);
  const geom::DistVal g = e.GeometricCorrection(1000, 10, two);
  EXPECT_EQ(e.Correct(1000, 10, two, /*aggressive=*/true), std::min(a, g));
  EXPECT_EQ(e.Correct(1000, 10, two, /*aggressive=*/false), std::max(a, g));
}

TEST(DmaxEstimatorTest, BoundaryFnMatchesInitialEstimate) {
  DmaxEstimator e(Rect(0, 0, 100, 100), 50, Rect(0, 0, 100, 100), 20);
  const auto fn = e.BoundaryFn();
  for (uint64_t c : {1ull, 10ull, 1000ull}) {
    EXPECT_NEAR(fn(c).raw(), e.InitialEstimate(c).raw(), 1e-12);
  }
  // Monotone increasing.
  EXPECT_LT(fn(10), fn(20));
}

TEST(DmaxEstimatorTest, UniformDataEstimateIsAccurate) {
  // The estimator's core assumption: for uniform data the k-th pair
  // distance is close to sqrt(k * rho). Validate within a factor of 2.
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::UniformPoints(300, 91, uni);
  const auto s = workload::UniformPoints(300, 92, uni);
  std::vector<double> d;
  for (const auto& a : r.objects) {
    for (const auto& b : s.objects) d.push_back(geom::MinDistance(a, b));
  }
  std::sort(d.begin(), d.end());
  DmaxEstimator e(r.Bounds(), r.objects.size(), s.Bounds(),
                  s.objects.size());
  for (uint64_t k : {100ull, 1000ull, 10000ull}) {
    const double est = e.InitialEstimate(k).raw();
    const double real = d[k - 1];
    EXPECT_GT(est, real * 0.5) << "k=" << k;
    EXPECT_LT(est, real * 2.0) << "k=" << k;
  }
}

TEST(DmaxEstimatorTest, SkewedDataIsOverestimated) {
  // Section 4.3: for skewed data the estimate tends to overestimate (the
  // close pairs crowd into dense regions).
  const Rect uni(0, 0, 1000, 1000);
  const auto r = workload::GaussianClusters(300, 3, 0.01, 93, uni);
  const auto s = workload::GaussianClusters(300, 3, 0.01, 93, uni);
  std::vector<double> d;
  for (const auto& a : r.objects) {
    for (const auto& b : s.objects) d.push_back(geom::MinDistance(a, b));
  }
  std::sort(d.begin(), d.end());
  DmaxEstimator e(r.Bounds(), r.objects.size(), s.Bounds(),
                  s.objects.size());
  EXPECT_GT(e.InitialEstimate(100).raw(), d[99]);
}

}  // namespace
}  // namespace amdj::core

#include "spatialjoin/spatial_join.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generators.h"

namespace amdj::spatialjoin {
namespace {

using core::ResultPair;
using test::JoinFixture;
using test::MakeFixture;

std::set<std::pair<uint32_t, uint32_t>> BruteWithin(
    const std::vector<geom::Rect>& r, const std::vector<geom::Rect>& s,
    double dmax) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (uint32_t i = 0; i < r.size(); ++i) {
    for (uint32_t j = 0; j < s.size(); ++j) {
      if (geom::MinDistance(r[i], s[j]) <= dmax) out.insert({i, j});
    }
  }
  return out;
}

StatusOr<std::set<std::pair<uint32_t, uint32_t>>> RunWithin(
    const JoinFixture& f, double dmax, JoinStats* stats = nullptr) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  Status s = SpatialJoin::Within(
      *f.r, *f.s, geom::DistVal(dmax), core::JoinOptions{}, stats,
      [&](const ResultPair& p) -> Status {
        EXPECT_LE(p.distance, dmax);
        EXPECT_TRUE(out.insert({p.r_id, p.s_id}).second)
            << "pair emitted twice";
        return Status::OK();
      });
  if (!s.ok()) return s;
  return out;
}

TEST(SpatialJoinTest, MatchesBruteForceAcrossRadii) {
  const geom::Rect uni(0, 0, 5000, 5000);
  JoinFixture f =
      MakeFixture(workload::GaussianClusters(300, 6, 0.05, 61, uni),
                  workload::UniformRects(250, 40.0, 62, uni), 8);
  for (double dmax : {0.0, 5.0, 50.0, 500.0, 10000.0}) {
    auto got = RunWithin(f, dmax);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, BruteWithin(f.r_objects, f.s_objects, dmax))
        << "dmax=" << dmax;
  }
}

TEST(SpatialJoinTest, ZeroRadiusIsIntersectionJoin) {
  // dmax = 0 degenerates to the classic intersect-predicate spatial join.
  const geom::Rect uni(0, 0, 500, 500);
  JoinFixture f = MakeFixture(workload::UniformRects(200, 30.0, 63, uni),
                              workload::UniformRects(200, 30.0, 64, uni), 8);
  auto got = RunWithin(f, 0.0);
  ASSERT_TRUE(got.ok());
  std::set<std::pair<uint32_t, uint32_t>> expected;
  for (uint32_t i = 0; i < f.r_objects.size(); ++i) {
    for (uint32_t j = 0; j < f.s_objects.size(); ++j) {
      if (f.r_objects[i].Intersects(f.s_objects[j])) expected.insert({i, j});
    }
  }
  EXPECT_EQ(*got, expected);
  EXPECT_FALSE(expected.empty());  // sanity: the workload does intersect
}

TEST(SpatialJoinTest, EmptyTreesEmitNothing) {
  workload::Dataset empty;
  workload::Dataset one;
  one.objects = {geom::Rect(0, 0, 1, 1)};
  JoinFixture f = MakeFixture(empty, one);
  auto got = RunWithin(f, 100.0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(SpatialJoinTest, EmitErrorAbortsJoin) {
  const geom::Rect uni(0, 0, 100, 100);
  JoinFixture f = MakeFixture(workload::UniformPoints(50, 65, uni),
                              workload::UniformPoints(50, 66, uni), 8);
  int emitted = 0;
  const Status s = SpatialJoin::Within(
      *f.r, *f.s, geom::DistVal(1000.0), core::JoinOptions{}, nullptr,
      [&](const ResultPair&) -> Status {
        if (++emitted >= 5) return Status::Internal("stop");
        return Status::OK();
      });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(emitted, 5);
}

TEST(SpatialJoinTest, StatsCountWork) {
  const geom::Rect uni(0, 0, 1000, 1000);
  JoinFixture f = MakeFixture(workload::UniformPoints(200, 67, uni),
                              workload::UniformPoints(200, 68, uni), 8);
  JoinStats stats;
  auto got = RunWithin(f, 30.0, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(stats.real_distance_computations, got->size());
  EXPECT_GT(stats.node_expansions, 0u);
}

}  // namespace
}  // namespace amdj::spatialjoin

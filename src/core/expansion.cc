#include "core/expansion.h"

#include <algorithm>

#include "common/logging.h"
#include "rtree/node.h"

namespace amdj::core {

PairRef RootRef(const rtree::RTree& tree) {
  PairRef ref;
  ref.rect = tree.size() > 0 ? tree.bounds() : geom::Rect();
  ref.id = tree.root();
  ref.kind = RefKind::kNode;
  ref.level = static_cast<uint8_t>(tree.height() - 1);
  return ref;
}

Status FetchChildren(const rtree::RTree& tree, const PairRef& ref,
                     std::vector<PairRef>* out) {
  AMDJ_CHECK(!ref.IsObject()) << "cannot expand an object ref";
  rtree::Node node;
  AMDJ_RETURN_IF_ERROR(tree.ReadNode(ref.id, &node));
  out->clear();
  out->reserve(node.entries.size());
  for (const rtree::Entry& e : node.entries) {
    PairRef child;
    child.rect = e.rect;
    child.id = e.id;
    if (node.IsLeaf()) {
      child.kind = RefKind::kObject;
      child.level = 0;
    } else {
      child.kind = RefKind::kNode;
      child.level = static_cast<uint8_t>(node.level - 1);
    }
    out->push_back(child);
  }
  return Status::OK();
}

Status ChildList(const rtree::RTree& tree, const PairRef& ref,
                 std::vector<PairRef>* out) {
  if (ref.IsObject()) {
    out->assign(1, ref);
    return Status::OK();
  }
  return FetchChildren(tree, ref, out);
}

Status ChildList(const rtree::RTree& tree, const PairRef& ref,
                 const std::optional<geom::Rect>& window,
                 std::vector<PairRef>* out) {
  AMDJ_RETURN_IF_ERROR(ChildList(tree, ref, out));
  if (window.has_value()) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [&](const PairRef& child) {
                                return !child.rect.Intersects(*window);
                              }),
               out->end());
  }
  return Status::OK();
}

}  // namespace amdj::core

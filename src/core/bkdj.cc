#include "core/bkdj.h"

#include "common/run_report.h"
#include "common/trace.h"
#include "core/expansion.h"
#include "core/parallel.h"
#include "core/plane_sweeper.h"
#include "core/qdmax_tracker.h"

namespace amdj::core {

namespace {

/// Batched-round parallel B-KDJ (JoinOptions::parallelism > 1). Each round
/// (a) emits the object pairs at the queue front — they precede every
/// pending node pair, and children only ever have distance >= their
/// parent's, so nothing later can overtake them; (b) pops up to one batch
/// of node pairs, stopping early at the next object pair, which must wait
/// until the batch's children are merged (a child could tie or beat it);
/// (c) expands the batch on the pool and merges candidates in task order,
/// re-filtering against the exact cutoff. The emitted sequence is the
/// same "top-k object pairs in main-queue order" the sequential loop
/// produces; see DESIGN.md "Concurrency model" for the full argument.
StatusOr<std::vector<ResultPair>> RunParallel(const rtree::RTree& r,
                                              const rtree::RTree& s,
                                              uint64_t k,
                                              const JoinOptions& options,
                                              JoinStats* stats) {
  std::vector<ResultPair> results;
  if (options.report != nullptr) options.report->BeginPhase("search", *stats);
  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  BatchExpander expander(r, s, options);
  const PairEntryCompare before = MakeMainQueueCompare(options);
  std::vector<PairEntry> popped;
  std::vector<ExpandTask> tasks;
  const auto is_object = [](const PairEntry& e) { return e.IsObjectPair(); };

  while (results.size() < k && !queue.Empty()) {
    // (a) Emit every ready object pair at the queue front.
    popped.clear();
    AMDJ_RETURN_IF_ERROR(
        queue.PopBatch(k - results.size(), is_object, &popped));
    for (const PairEntry& e : popped) {
      results.push_back({geom::KeyToDistance(e.key, options.metric).raw(),
                         e.r.id, e.s.id});
      ++stats->pairs_produced;
    }
    if (results.size() >= k) break;

    // (b) Collect a batch of node pairs; a following object pair stays
    // queued until this batch's children have been merged. The adaptive
    // limit keeps speculation in check (see BatchExpander::batch_limit),
    // and tie plateaus are serialized: a tied node pair's children often
    // tie the whole plateau, and a tied child that out-ranks a batch-mate
    // forces a tie-guard abort — batching a plateau mostly buys discarded
    // work. One pair per round replays the sequential order exactly.
    popped.clear();
    geom::KeyVal prev_key = geom::KeyVal::Zero();
    AMDJ_RETURN_IF_ERROR(queue.PopBatch(
        expander.batch_limit(),
        [&](const PairEntry& e) {
          if (e.IsObjectPair()) return false;
          if (!popped.empty() && e.key == prev_key) return false;
          prev_key = e.key;
          return true;
        },
        &popped));
    tasks.clear();
    for (const PairEntry& e : popped) {
      tracker.OnNodePairLeave(e);
      if (e.key > tracker.Cutoff()) continue;  // can never contribute
      ExpandTask t;
      t.pair = e;
      tasks.push_back(t);
    }
    if (tasks.empty()) continue;
    ++stats->parallel_rounds;
    stats->parallel_tasks += tasks.size();
    TraceSpan round_span(
        options.tracer, "parallel_round",
        {{"tasks", static_cast<double>(tasks.size())},
         {"cutoff_key", tracker.Cutoff().raw()}});

    // (c) Fan out, then merge in task order on this thread.
    AMDJ_RETURN_IF_ERROR(expander.Run(
        tasks, tracker.Cutoff(),
        [&](size_t i, ExpandSlot* slot) -> StatusOr<bool> {
          FoldSlotStats(slot, stats);
          bool tie_hazard = false;
          for (const PairEntry& e : slot->candidates) {
            // Re-filter against the exact cutoff: the worker's copy may
            // have been stale (only ever too large).
            if (e.key > tracker.Cutoff()) continue;
            AMDJ_RETURN_IF_ERROR(queue.Push(e));
            tracker.OnPush(e);
            if (!tie_hazard) {
              tie_hazard = TiesAheadOfPendingTask(e, tasks, i + 1, before);
            }
          }
          expander.Tighten(tracker.Cutoff());
          // Tie guard: a pushed child that exactly ties a not-yet-merged
          // task and out-ranks it via the tie-break would have been
          // processed by the sequential loop before that task. Abort the
          // round: re-push the remaining tasks (balancing their
          // OnNodePairLeave) and let the main queue re-establish the
          // exact interleaving next round.
          if (tie_hazard) {
            ++stats->parallel_tie_aborts;
            AMDJ_TRACE(
                options.tracer,
                Instant("tie_guard_abort",
                        {{"merged", static_cast<double>(i + 1)},
                         {"requeued",
                          static_cast<double>(tasks.size() - i - 1)}}));
            for (size_t j = i + 1; j < tasks.size(); ++j) {
              AMDJ_RETURN_IF_ERROR(queue.Push(tasks[j].pair));
              tracker.OnPush(tasks[j].pair);
            }
            return false;
          }
          return true;
        }));
    size_t wasted = 0;
    for (const ExpandTask& t : tasks) {
      if (t.pair.key > tracker.Cutoff()) ++wasted;
    }
    expander.ReportRound(tasks.size(), wasted);
  }
  if (options.report != nullptr) {
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  }
  return results;
}

}  // namespace

StatusOr<std::vector<ResultPair>> BKdj::Run(const rtree::RTree& r,
                                            const rtree::RTree& s,
                                            uint64_t k,
                                            const JoinOptions& options,
                                            JoinStats* stats) {
  std::vector<ResultPair> results;
  if (k == 0 || r.size() == 0 || s.size() == 0) return results;
  JoinStats local;
  if (stats == nullptr) stats = &local;
  if (options.parallelism > 1) return RunParallel(r, s, k, options, stats);

  if (options.report != nullptr) options.report->BeginPhase("search", *stats);
  MainQueue queue(MakeMainQueueOptions(r, s, options), stats,
                  MakeMainQueueCompare(options));
  QdmaxTracker tracker(k, options, stats);
  {
    const PairEntry root = MakePair(RootRef(r), RootRef(s), options.metric);
    AMDJ_RETURN_IF_ERROR(queue.Push(root));
    tracker.OnPush(root);
  }

  std::vector<PairRef> left;
  std::vector<PairRef> right;
  PairEntry c;
  while (results.size() < k && !queue.Empty()) {
    AMDJ_RETURN_IF_ERROR(queue.Pop(&c));
    // Sharded execution: once the frontier passes the externally
    // maintained global cutoff, nothing left in the queue — pops are
    // non-decreasing in key, and children never precede their parent —
    // can enter the merged global top-k. Strict >: ties may still
    // contribute.
    if (options.shared_cutoff_key != nullptr &&
        c.key > options.shared_cutoff_key->load(std::memory_order_relaxed)) {
      break;
    }
    if (c.IsObjectPair()) {
      results.push_back({geom::KeyToDistance(c.key, options.metric).raw(),
                         c.r.id, c.s.id});
      ++stats->pairs_produced;
      continue;
    }
    tracker.OnNodePairLeave(c);
    // qDmax upper-bounds the final k-th distance at all times, so a pair
    // whose minimum distance exceeds it can never contribute.
    geom::KeyVal cutoff = tracker.Cutoff();
    if (c.key > cutoff) continue;

    ++stats->node_expansions;
    TraceSpan span(options.tracer, "expand_sweep",
                   {{"r_level", static_cast<double>(c.r.level)},
                    {"s_level", static_cast<double>(c.s.level)},
                    {"key", c.key.raw()}});
    AMDJ_RETURN_IF_ERROR(ChildList(r, c.r, options.r_window, &left));
    AMDJ_RETURN_IF_ERROR(ChildList(s, c.s, options.s_window, &right));
    const SweepPlan plan = ChooseSweepPlan(
        c.r.rect, c.s.rect, geom::KeyToDistance(cutoff, options.metric),
        options.sweep);

    Status sweep_status;
    KeyedSweepSpec spec;
    spec.metric = options.metric;
    // The sweep prune and the distance filter (Algorithm 1, line 17) both
    // track the live qDmax, refreshed by the callback after every push.
    spec.axis_cutoff_key = &cutoff;
    spec.dist_cutoff_key = &cutoff;
    PlaneSweepKeyed(
        left, right, plan, spec, stats,
        [&](const PairRef& lref, const PairRef& rref,
            geom::KeyVal dist_key) {
          if (!sweep_status.ok()) return;
          if (options.exclude_same_id && IsSelfPair(lref, rref)) {
            return;
          }
          PairEntry e;
          e.r = lref;
          e.s = rref;
          e.key = dist_key;
          sweep_status = queue.Push(e);
          if (!sweep_status.ok()) {
            cutoff = geom::KeyVal(-1.0);  // abort the sweep
            return;
          }
          tracker.OnPush(e);  // line 19: qDmax may shrink
          cutoff = tracker.Cutoff();
        });
    AMDJ_RETURN_IF_ERROR(sweep_status);
  }
  if (options.report != nullptr) {
    if (!results.empty()) {
      options.report->OnCutoff("final_dmax", results.back().distance,
                               results.size());
    }
    options.report->EndPhase(*stats);
  }
  return results;
}

}  // namespace amdj::core

// Negative-compile probe #2: implicit double -> KeyVal conversion. The
// constructor is deliberately `explicit`: a raw double has no unit, so
// letting one silently become a key would re-open every mix-up the type
// exists to kill (e.g. passing a true distance straight into the queue).
// This translation unit MUST fail to compile.

#include "geom/units.h"

namespace {
void Consume(amdj::geom::KeyVal) {}
}  // namespace

int main() {
  // BUG (deliberate): copy-initialization from a raw double.
  amdj::geom::KeyVal key = 4.0;
  Consume(2.5);  // and implicit conversion at a call boundary
  (void)key;
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/ablation_bulk_loading.dir/ablation_bulk_loading.cc.o"
  "CMakeFiles/ablation_bulk_loading.dir/ablation_bulk_loading.cc.o.d"
  "ablation_bulk_loading"
  "ablation_bulk_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bulk_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef AMDJ_QUEUE_CUTOFF_TRACKER_H_
#define AMDJ_QUEUE_CUTOFF_TRACKER_H_

#include <cstdint>
#include <set>

#include "common/stats.h"
#include "geom/units.h"

namespace amdj::queue {

/// The revocable counterpart of DistanceQueue, needed to make the
/// "all pairs" distance-queue policy (paper footnote 1, option 1) *sound*.
/// Like DistanceQueue, values are metric keys (geom::KeyVal), not true
/// distances — the key is monotone in the distance, so ranking by key
/// ranks by distance.
///
/// Rationale: the cutoff qDmax must upper-bound the true k-th smallest
/// object-pair distance. Counting object-pair keys alone (option 2) is
/// trivially sound. Counting node-pair *max*-distance keys as well warms
/// the cutoff before any object pair exists — but a node pair's
/// certificate ("my subtree product contains >= 1 object pair within my
/// maxdist") overlaps the certificates of its own descendants, so naively
/// mixing them under-estimates the cutoff. The fix: certificates of node
/// pairs are *revoked* the moment the pair leaves the main queue (its
/// children's certificates take over). The main queue's live node pairs
/// always have pairwise-disjoint subtree products, and emitted/queued
/// object pairs are distinct, so at any instant the alive values certify
/// k *distinct* object pairs — hence the k-th smallest alive value is a
/// sound cutoff.
///
/// Keeps the k smallest alive values in `lower_` and the rest in `upper_`
/// (both multisets), giving O(log n) insert/revoke and O(1) cutoff.
class TrackedDistanceQueue {
 public:
  /// `k` must be >= 1. `stats` (optional) receives insertion counts.
  explicit TrackedDistanceQueue(size_t k, JoinStats* stats = nullptr)
      : k_(k == 0 ? 1 : k), stats_(stats) {}

  /// Permanent insertion (an object pair's real distance key).
  void Insert(geom::KeyVal value) {
    if (stats_ != nullptr) ++stats_->distance_queue_insertions;
    Add(value);
  }

  /// Revocable insertion (a node pair's max-distance-key certificate). The
  /// same value must later be passed to Revoke when the pair leaves the
  /// main queue.
  void InsertRevocable(geom::KeyVal value) { Insert(value); }

  /// Removes one alive instance of `value` (no-op if none exists, which
  /// can only happen through caller misuse).
  void Revoke(geom::KeyVal value);

  /// The k-th smallest alive key; +infinity while fewer than k values are
  /// alive.
  geom::KeyVal CutoffKey() const {
    return lower_.size() < k_ ? geom::KeyVal::Infinity() : *lower_.rbegin();
  }

  size_t alive() const { return lower_.size() + upper_.size(); }

 private:
  void Add(geom::KeyVal value);
  /// Restores |lower_| == min(k, alive) after a mutation.
  void Rebalance();

  size_t k_;
  JoinStats* stats_;
  std::multiset<geom::KeyVal> lower_;  // the k smallest alive values
  std::multiset<geom::KeyVal> upper_;  // everything else
};

}  // namespace amdj::queue

#endif  // AMDJ_QUEUE_CUTOFF_TRACKER_H_

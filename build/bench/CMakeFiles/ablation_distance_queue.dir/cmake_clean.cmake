file(REMOVE_RECURSE
  "CMakeFiles/ablation_distance_queue.dir/ablation_distance_queue.cc.o"
  "CMakeFiles/ablation_distance_queue.dir/ablation_distance_queue.cc.o.d"
  "ablation_distance_queue"
  "ablation_distance_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distance_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/incremental_explorer.dir/incremental_explorer.cc.o"
  "CMakeFiles/incremental_explorer.dir/incremental_explorer.cc.o.d"
  "incremental_explorer"
  "incremental_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Microbenchmarks for the queue substrate: distance-queue inserts, hybrid
// main-queue push/pop in memory and with disk spilling.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/hs_join.h"
#include "core/pair_entry.h"
#include "queue/distance_queue.h"
#include "queue/hybrid_queue.h"
#include "storage/disk_manager.h"

namespace amdj {
namespace {

void BM_DistanceQueueInsert(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Random rng(1);
  std::vector<double> values(1 << 16);
  for (auto& v : values) v = rng.NextDouble();
  size_t i = 0;
  queue::DistanceQueue q(k);
  for (auto _ : state) {
    q.Insert(values[i++ & (values.size() - 1)]);
    benchmark::DoNotOptimize(q.CutoffDistance());
  }
}
BENCHMARK(BM_DistanceQueueInsert)->Arg(10)->Arg(1000)->Arg(100000);

core::PairEntry MakeEntry(double key) {
  core::PairEntry e;
  e.key = key;
  return e;
}

void BM_HybridQueueInMemory(benchmark::State& state) {
  Random rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    core::MainQueue q(core::MainQueue::Options{}, nullptr);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
    }
    core::PairEntry out;
    while (!q.Empty()) {
      benchmark::DoNotOptimize(q.Pop(&out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_HybridQueueInMemory)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_HybridQueueSpilling(benchmark::State& state) {
  Random rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
    }
    core::PairEntry out;
    while (!q.Empty()) {
      benchmark::DoNotOptimize(q.Pop(&out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_HybridQueueSpilling)->Arg(1 << 14)->Arg(1 << 17);

void BM_HybridQueueSpillingWithBoundaries(benchmark::State& state) {
  Random rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    storage::InMemoryDiskManager disk;
    core::MainQueue::Options options;
    options.disk = &disk;
    options.memory_bytes = 64 * 1024;
    const double n = static_cast<double>(state.range(0));
    options.boundary_fn = [n](uint64_t c) {
      return static_cast<double>(c) / n;
    };
    core::MainQueue q(options, nullptr);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(q.Push(MakeEntry(rng.NextDouble())));
    }
    // Distance-join access pattern: only the closest tenth is consumed.
    core::PairEntry out;
    for (int i = 0; i < state.range(0) / 10; ++i) {
      benchmark::DoNotOptimize(q.Pop(&out));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridQueueSpillingWithBoundaries)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace amdj

BENCHMARK_MAIN();

// Intra-query parallel scaling of the batched join executor: B-KDJ and
// AM-KDJ at 1, 2, 4 and 8 threads on the default TIGER workload. Reports
// wall-clock seconds, speedup over the sequential run, node accesses and
// real distance computations per thread count, and verifies that every
// parallel run returns byte-identical results (values and order) to the
// sequential one — the executor's contract.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"

namespace amdj::bench {
namespace {

void Run(int argc, char** argv) {
  BenchEnv env = MakeTigerEnv(BenchConfig::FromArgs(argc, argv));
  PrintHeader("Parallel KDJ scaling (batched rounds, shared cutoff)", env);

  const uint64_t k = 100'000;
  const std::vector<uint32_t> threads = {1, 2, 4, 8};
  const std::vector<core::KdjAlgorithm> algorithms = {
      core::KdjAlgorithm::kBKdj, core::KdjAlgorithm::kAmKdj};

  const std::vector<int> widths = {10, 9, 12, 9, 14, 14};
  PrintRow({"algorithm", "threads", "wall (s)", "speedup", "node acc.",
            "real dist."},
           widths);

  for (const core::KdjAlgorithm algorithm : algorithms) {
    double sequential_seconds = 0.0;
    std::vector<core::ResultPair> sequential_results;
    for (const uint32_t t : threads) {
      core::JoinOptions options = env.MakeJoinOptions();
      options.parallelism = t;
      RunResult run = RunKdjCold(env, algorithm, k, options);
      if (t == 1) {
        sequential_seconds = run.stats.cpu_seconds;
        sequential_results = std::move(run.results);
      } else if (run.results != sequential_results) {
        std::fprintf(stderr,
                     "FATAL: %s results at %u threads differ from the "
                     "sequential run\n",
                     core::ToString(algorithm), t);
        std::exit(1);
      }
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    sequential_seconds / run.stats.cpu_seconds);
      PrintRow({core::ToString(algorithm), std::to_string(t),
                FormatSeconds(run.stats.cpu_seconds), speedup,
                FormatCount(run.stats.node_accesses),
                FormatCount(run.stats.real_distance_computations)},
               widths);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace amdj::bench

int main(int argc, char** argv) {
  amdj::bench::Run(argc, argv);
  return 0;
}

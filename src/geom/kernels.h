#ifndef AMDJ_GEOM_KERNELS_H_
#define AMDJ_GEOM_KERNELS_H_

#include <cstddef>
#include <cstdint>

/// Batched structure-of-arrays distance kernels for the plane-sweep hot
/// path. Every kernel has a portable scalar implementation plus SSE2/AVX2
/// variants selected once at startup by runtime CPU dispatch.
///
/// Bit-exactness contract: all backends produce bit-identical outputs for
/// the same inputs. This holds because every backend performs the *same
/// floating-point operations in the same order* per lane — compare, subtract,
/// multiply, add — and the kernel translation units are compiled with FP
/// contraction disabled (no FMA fusing a mul+add into one rounding). The
/// SIMD max matches the scalar `a > b ? a : b` (second operand wins ties,
/// which also canonicalizes -0.0 gaps to +0.0 in every backend). See
/// DESIGN.md "Vectorized distance kernels".

namespace amdj::geom {

enum class KernelBackend : uint8_t {
  kScalar = 0,  ///< Portable C++; always available.
  kSse2 = 1,    ///< x86-64 baseline (2 doubles / op).
  kAvx2 = 2,    ///< 4 doubles / op; requires CPU + compiler support.
};

/// Stable display name ("scalar", "sse2", "avx2").
const char* ToString(KernelBackend backend);

/// True if `backend` was compiled in and the running CPU supports it.
bool KernelBackendAvailable(KernelBackend backend);

/// The backend the Batch* entry points currently dispatch to (the best
/// available one unless overridden by ForceKernelBackend).
KernelBackend ActiveKernelBackend();

/// Test hook: pin dispatch to `backend`. If it is unavailable, falls back
/// to the best available one at or below it. Returns the backend actually
/// in effect. Not thread-safe against concurrent Batch* calls; intended
/// for tests and benchmarks only.
KernelBackend ForceKernelBackend(KernelBackend backend);

/// Undo ForceKernelBackend: dispatch to the best available backend again.
void ResetKernelBackend();

/// out[i] = max(0, lo[i] - anchor_hi): the one-sided axis separation of the
/// sweep inner loop (items are scanned in ascending lo order past the
/// anchor, so the anchor's interval never lies above a candidate's).
void BatchAxisDistance(const double* lo, double anchor_hi, std::size_t n,
                       double* out);

/// Rect-by-rect: out[i] = squared L2 minimum distance between the i-th SoA
/// rectangle [lo0[i],hi0[i]]x[lo1[i],hi1[i]] and the query rectangle
/// [q_lo0,q_hi0]x[q_lo1,q_hi1]. Per axis the branch-free gap
/// max(max(q_lo - hi[i], lo[i] - q_hi), 0) is bit-identical to the branchy
/// geom::AxisDistance, then fl(fl(dx*dx) + fl(dy*dy)) exactly as
/// geom::MinDistanceSquared computes it.
void BatchMinDistSquared(const double* lo0, const double* hi0,
                         const double* lo1, const double* hi1, double q_lo0,
                         double q_hi0, double q_lo1, double q_hi1,
                         std::size_t n, double* out);

/// Point-by-rect: the i-th rectangle degenerates to the point
/// (px[i], py[i]). Same value as BatchMinDistSquared with lo==hi==p.
void BatchMinDistSquaredPoint(const double* px, const double* py,
                              double q_lo0, double q_hi0, double q_lo1,
                              double q_hi1, std::size_t n, double* out);

/// Batched cutoff filter: compacts the indices i with keys[i] <= cutoff
/// into out_idx (ascending) and returns how many survived.
std::size_t BatchFilterWithin(const double* keys, std::size_t n,
                              double cutoff, std::uint32_t* out_idx);

namespace internal {

// Per-backend entry points, exposed so tests and microbenches can compare
// backends directly (exact ==). Every symbol always links: when a backend
// was not compiled in, its functions forward to the next narrower backend
// (KernelBackendAvailable reports the runtime truth — gate on it before
// drawing conclusions from a comparison).

void BatchAxisDistanceScalar(const double* lo, double anchor_hi,
                             std::size_t n, double* out);
void BatchMinDistSquaredScalar(const double* lo0, const double* hi0,
                               const double* lo1, const double* hi1,
                               double q_lo0, double q_hi0, double q_lo1,
                               double q_hi1, std::size_t n, double* out);
void BatchMinDistSquaredPointScalar(const double* px, const double* py,
                                    double q_lo0, double q_hi0, double q_lo1,
                                    double q_hi1, std::size_t n, double* out);
std::size_t BatchFilterWithinScalar(const double* keys, std::size_t n,
                                    double cutoff, std::uint32_t* out_idx);

void BatchAxisDistanceSse2(const double* lo, double anchor_hi, std::size_t n,
                           double* out);
void BatchMinDistSquaredSse2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out);
void BatchMinDistSquaredPointSse2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out);
std::size_t BatchFilterWithinSse2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx);

void BatchAxisDistanceAvx2(const double* lo, double anchor_hi, std::size_t n,
                           double* out);
void BatchMinDistSquaredAvx2(const double* lo0, const double* hi0,
                             const double* lo1, const double* hi1,
                             double q_lo0, double q_hi0, double q_lo1,
                             double q_hi1, std::size_t n, double* out);
void BatchMinDistSquaredPointAvx2(const double* px, const double* py,
                                  double q_lo0, double q_hi0, double q_lo1,
                                  double q_hi1, std::size_t n, double* out);
std::size_t BatchFilterWithinAvx2(const double* keys, std::size_t n,
                                  double cutoff, std::uint32_t* out_idx);

}  // namespace internal

}  // namespace amdj::geom

#endif  // AMDJ_GEOM_KERNELS_H_

#include "core/shard_executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <future>
#include <limits>
#include <numeric>
#include <utility>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/run_report.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/ranked_merge.h"
#include "queue/distance_queue.h"

namespace amdj::core {

namespace {

/// A scheduled shard pair with its bounds-only distance bracket.
struct PairTask {
  uint32_t r_shard = 0;
  uint32_t s_shard = 0;
  /// MinDistanceKey of the two shard MBBs.
  geom::KeyVal min_key = geom::KeyVal::Zero();
  /// MaxDistanceKey of the two shard MBBs.
  geom::KeyVal max_key = geom::KeyVal::Zero();
  double weight = 0.0;  ///< Candidate object pairs the pair can supply.
};

/// Monotone publisher of the global cutoff key: a bounded-k max-heap
/// pooling the exact candidate keys streamed by the running pairs
/// (CutoffKeySink), floored at the bounds-only prefix bound U. Every
/// pooled key is the distance key of a distinct real pair (shard-pair
/// products are disjoint, and a pair's run pushes each candidate at most
/// once — pooling a key twice would be unsound, shrinking the k-th below
/// the true one), so the pooled k-th smallest upper-bounds the global
/// k-th key at every instant; relaxed atomics suffice because the value
/// only ever shrinks — a stale read is a looser, still sound, cutoff
/// (the PR 1 protocol, one level up).
class CutoffPublisher : public CutoffKeySink {
 public:
  CutoffPublisher(uint64_t k, geom::KeyVal initial)
      : initial_(initial), keys_(static_cast<size_t>(k), nullptr) {
    published_.store(initial, std::memory_order_relaxed);
  }

  /// Per-candidate live path (CutoffKeySink): the running pairs stream
  /// every object-pair key here, so the pooled top-k — and with it the
  /// published bound — tightens *during* pair execution. This is what
  /// makes the cutoff finite early: no single shard pair may ever hold k
  /// results, but their union does.
  void OnResultKey(geom::KeyVal key) override {
    MutexLock lock(&mu_);
    keys_.Insert(key);
    AtomicMinKey(&published_, std::min(initial_, keys_.CutoffKey()));
  }

  geom::KeyVal Current() const {
    return published_.load(std::memory_order_relaxed);
  }

  const std::atomic<geom::KeyVal>* handle() const { return &published_; }
  std::atomic<geom::KeyVal>* publish_handle() { return &published_; }

 private:
  const geom::KeyVal initial_;
  std::atomic<geom::KeyVal> published_{geom::KeyVal::Zero()};
  Mutex mu_;
  queue::DistanceQueue keys_ AMDJ_GUARDED_BY(mu_);
};

/// One per-pair result with its key recomputed exactly from the object
/// MBRs. Merging on the emitted distance would be ambiguous — two distinct
/// keys can round to the same sqrt — keys are not.
struct MergeEntry {
  geom::KeyVal key = geom::KeyVal::Zero();
  ResultPair pair;
};

bool MergeLess(const MergeEntry& a, const MergeEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.pair.r_id != b.pair.r_id) return a.pair.r_id < b.pair.r_id;
  return a.pair.s_id < b.pair.s_id;
}

/// Worker-shared coordinator state (annotated so the locking discipline is
/// compiler-checked like the rest of the concurrent layer). Runs are slot-
/// indexed by survivor so the top-up phase can replace a probe run without
/// disturbing the others.
struct SharedState {
  Mutex mu;
  Status first_error AMDJ_GUARDED_BY(mu);
  JoinStats agg AMDJ_GUARDED_BY(mu);
  std::vector<std::vector<MergeEntry>> runs AMDJ_GUARDED_BY(mu);
  std::vector<char> truncated AMDJ_GUARDED_BY(mu);
  uint64_t pruned_cutoff AMDJ_GUARDED_BY(mu) = 0;
  uint64_t executed AMDJ_GUARDED_BY(mu) = 0;
};

/// Live metrics for the sharded executor (process-wide; the per-query view
/// is JoinStats). Stage histograms share one family, split by stage label.
struct ShardMetrics {
  Histogram* stage_plan_ns;
  Histogram* stage_probe_ns;
  Histogram* stage_topup_ns;
  Histogram* stage_merge_ns;
  Gauge* pairs_running;
  Counter* pairs_pruned_bounds;
  Counter* pairs_pruned_cutoff;
  Counter* pairs_executed;
};

ShardMetrics& GlobalShardMetrics() {
  static ShardMetrics metrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Global();
    const auto stage = [registry](const char* name) {
      return registry->GetHistogram(
          "amdj_shard_stage_ns", std::string("stage=\"") + name + "\"",
          "Wall time of one sharded-join stage");
    };
    return ShardMetrics{
        stage("plan"),
        stage("probe"),
        stage("topup"),
        stage("merge"),
        registry->GetGauge("amdj_shard_pairs_running", "",
                           "Shard pairs currently executing"),
        registry->GetCounter("amdj_shard_pairs_pruned_total",
                             "reason=\"bounds\"",
                             "Shard pairs skipped before or during dispatch"),
        registry->GetCounter("amdj_shard_pairs_pruned_total",
                             "reason=\"cutoff\"",
                             "Shard pairs skipped before or during dispatch"),
        registry->GetCounter("amdj_shard_pairs_executed_total", "",
                             "Shard pairs that ran a per-pair join"),
    };
  }();
  return metrics;
}

}  // namespace

StatusOr<std::vector<ResultPair>> RunShardedKDistanceJoin(
    const Partition& r, const Partition& s, uint64_t k,
    const ShardedJoinOptions& options, JoinStats* stats) {
  if (options.algorithm != KdjAlgorithm::kBKdj &&
      options.algorithm != KdjAlgorithm::kAmKdj) {
    return Status::InvalidArgument(
        "sharded execution supports B-KDJ and AM-KDJ only (the shared-cutoff "
        "early-stop protocol is implemented there)");
  }
  if (options.threads == 0) {
    return Status::InvalidArgument("ShardedJoinOptions::threads must be >= 1");
  }
  JoinStats local;
  if (stats == nullptr) stats = &local;
  if (k == 0 || r.total_size() == 0 || s.total_size() == 0) {
    return std::vector<ResultPair>();
  }

  Timer wall;
  const geom::Metric metric = options.join.metric;
  Tracer* const tracer = options.join.tracer;
  // The executor drives the report itself: per-pair joins run with
  // per.report = nullptr (a RunReport is coordinator-confined and phases
  // from concurrent pairs would interleave), so phases here are the
  // executor's own stages, with worker counters folded into *stats at each
  // quiescent phase boundary so the deltas land in the right phase.
  RunReport* const report = options.join.report;
  if (report != nullptr) {
    report->SetMeta(std::string("sharded-") + ToString(options.algorithm), k);
    report->BeginPhase("shard-plan", *stats);
  }

  // --- Plan: enumerate non-empty shard pairs and their bounds. ---
  std::vector<PairTask> tasks;
  std::vector<PairTask> survivors;
  geom::KeyVal bound_u = geom::KeyVal::Infinity();
  {
    const ScopedLatencyTimer plan_timer(GlobalShardMetrics().stage_plan_ns);
    TraceSpan plan_span(tracer, "shard_plan",
                        {{"r_shards", static_cast<double>(r.shards().size())},
                         {"s_shards", static_cast<double>(s.shards().size())}});
    for (uint32_t i = 0; i < r.shards().size(); ++i) {
      const Shard& ri = r.shards()[i];
      if (ri.size == 0) continue;
      for (uint32_t j = 0; j < s.shards().size(); ++j) {
        const Shard& sj = s.shards()[j];
        if (sj.size == 0) continue;
        PairTask t;
        t.r_shard = i;
        t.s_shard = j;
        t.min_key = geom::MinDistanceKey(ri.bounds, sj.bounds, metric);
        t.max_key = geom::MaxDistanceKey(ri.bounds, sj.bounds, metric);
        t.weight =
            static_cast<double>(ri.size) * static_cast<double>(sj.size);
        if (options.join.exclude_same_id) {
          // Worst case: min(|Ri|,|Sj|) suppressed diagonal pairs. The
          // undercount only delays where the prefix below reaches k —
          // a larger, still sound, U.
          t.weight -= static_cast<double>(std::min(ri.size, sj.size));
        }
        if (t.weight <= 0.0) continue;
        tasks.push_back(t);
      }
    }
    stats->shard_pairs_considered += tasks.size();

    // Bounds-only bound U on the k-th key: walk pairs by ascending MaxDist
    // key until their candidate pairs alone reach k — those candidates all
    // have key <= that MaxDist key, so the k-th smallest key does too.
    // Spatial windows make the candidate count non-derivable from bounds;
    // the bound (and with it bounds-only pruning) is skipped.
    const bool count_bound_valid = !options.join.r_window.has_value() &&
                                   !options.join.s_window.has_value();
    if (count_bound_valid) {
      std::vector<size_t> order(tasks.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&tasks](size_t a, size_t b) {
        if (tasks[a].max_key != tasks[b].max_key) {
          return tasks[a].max_key < tasks[b].max_key;
        }
        if (tasks[a].r_shard != tasks[b].r_shard) {
          return tasks[a].r_shard < tasks[b].r_shard;
        }
        return tasks[a].s_shard < tasks[b].s_shard;
      });
      double cum = 0.0;
      for (const size_t idx : order) {
        cum += tasks[idx].weight;
        if (cum >= static_cast<double>(k)) {
          bound_u = tasks[idx].max_key;
          break;
        }
      }
    }

    for (const PairTask& t : tasks) {
      if (t.min_key > bound_u) {
        ++stats->shard_pairs_pruned_bounds;
        GlobalShardMetrics().pairs_pruned_bounds->Increment();
        AMDJ_TRACE(tracer,
                   Instant("shard_pair_pruned_bounds",
                           {{"r_shard", static_cast<double>(t.r_shard)},
                            {"s_shard", static_cast<double>(t.s_shard)},
                            {"min_key", t.min_key.raw()}}));
        continue;
      }
      survivors.push_back(t);
    }
    // Ascending MinDist: the pairs most likely to hold the top-k run
    // first, so the cutoff tightens as early as possible.
    std::sort(survivors.begin(), survivors.end(),
              [](const PairTask& a, const PairTask& b) {
                if (a.min_key != b.min_key) return a.min_key < b.min_key;
                if (a.r_shard != b.r_shard) return a.r_shard < b.r_shard;
                return a.s_shard < b.s_shard;
              });
    AMDJ_TRACE(tracer,
               Instant("shard_bound",
                       {{"bound_key", bound_u.raw()},
                        {"survivors", static_cast<double>(survivors.size())}}));
  }
  if (report != nullptr && std::isfinite(bound_u.raw())) {
    report->OnCutoff("shard_bound_u",
                     geom::KeyToDistance(bound_u, metric).raw(), 0);
  }

  // Shard-local Eq.-3 composition (the tiles double as a coarse 2-d
  // histogram); drives per-pair AM-KDJ stage-one cutoffs.
  const ShardPairEstimator estimator(r, s, metric,
                                     options.join.exclude_same_id);
  const geom::DistVal global_edmax = estimator.EstimateDmax(k);

  CutoffPublisher cutoff(k, bound_u);
  SharedState state;
  state.runs.resize(survivors.size());
  state.truncated.assign(survivors.size(), 0);

  // Probe cap: were every pair run straight at k, a pair whose product
  // holds fewer than k candidates would enumerate it exhaustively before
  // its own queue ever fills (a subset rarely has k results) — all of it
  // before the pooled cutoff goes finite. The probe phase caps the local k
  // so each pair self-bounds cheaply while the pool fills; the top-up
  // phase below re-runs only the pairs whose truncation boundary landed
  // inside the published cutoff.
  const uint64_t k_probe =
      survivors.empty()
          ? k
          : std::min<uint64_t>(
                k, std::max<uint64_t>(
                       1024, (4 * k) / static_cast<uint64_t>(
                                           survivors.size())));

  // `phase` 0 = probe (counts executed/pruned), 1 = top-up (replaces the
  // slot's run; the pair was already counted).
  const auto run_pair = [&](size_t slot, uint64_t k_local, int phase) {
    const PairTask& t = survivors[slot];
    const geom::KeyVal seen = cutoff.Current();
    if (phase == 0 && t.min_key > seen) {
      // Re-prune at dispatch: keys pooled by earlier pairs may have
      // pulled the cutoff below this pair's MinDist by now.
      AMDJ_TRACE(tracer,
                 Instant("shard_pair_pruned_cutoff",
                         {{"r_shard", static_cast<double>(t.r_shard)},
                          {"s_shard", static_cast<double>(t.s_shard)},
                          {"min_key", t.min_key.raw()},
                          {"cutoff_key", seen.raw()}}));
      GlobalShardMetrics().pairs_pruned_cutoff->Increment();
      MutexLock lock(&state.mu);
      ++state.pruned_cutoff;
      return;
    }
    const ScopedGauge running_gauge(GlobalShardMetrics().pairs_running);

    JoinOptions per = options.join;
    per.parallelism = 1;  // parallelism lives at the shard level
    per.report = nullptr;
    per.shared_cutoff_key = cutoff.handle();
    // Live feedback, with two phase-dependent soundness guards. A pair may
    // publish its local qDmax only when it runs at the full k: a probe run
    // capped at k_local < k holds the k_local-th smallest key of one pair,
    // which can sit far below the global k-th. And a pair may stream its
    // candidate keys into the pooled top-k only on its first execution:
    // a top-up re-run revisits the same object pairs, and pooling a real
    // pair's key twice pulls the pooled k-th below the true k-th.
    per.shared_cutoff_publish =
        k_local == k ? cutoff.publish_handle() : nullptr;
    per.shared_cutoff_sink = phase == 0 ? &cutoff : nullptr;
    if (options.use_estimator && options.algorithm == KdjAlgorithm::kAmKdj) {
      if (per.estimator == nullptr) per.estimator = &estimator;
      // Any forced_edmax is safe for AM-KDJ (compensation guarantees
      // B-KDJ-equal results), so clamp the global estimate by both the
      // caller's override and the live cutoff.
      geom::DistVal edmax = std::min(
          per.forced_edmax.value_or(global_edmax), global_edmax);
      if (std::isfinite(seen.raw())) {
        edmax = std::min(edmax, geom::KeyToDistance(seen, metric));
      }
      per.forced_edmax = edmax;
    }

    const Shard& ri = r.shards()[t.r_shard];
    const Shard& sj = s.shards()[t.s_shard];
    JoinStats pair_stats;
    StatusOr<std::vector<ResultPair>> res = std::vector<ResultPair>();
    {
      TraceSpan span(tracer, "shard_pair",
                     {{"r_shard", static_cast<double>(t.r_shard)},
                      {"s_shard", static_cast<double>(t.s_shard)},
                      {"min_key", t.min_key.raw()},
                      {"k_local", static_cast<double>(k_local)},
                      {"phase", static_cast<double>(phase)}});
      res = RunKDistanceJoin(*ri.tree, *sj.tree, k_local, options.algorithm,
                             per, &pair_stats);
    }
    if (!res.ok()) {
      MutexLock lock(&state.mu);
      if (state.first_error.ok()) state.first_error = res.status();
      return;
    }
    const bool truncated = res->size() == k_local && k_local < k;

    std::vector<MergeEntry> run;
    run.reserve(res->size());
    for (const ResultPair& rp : *res) {
      const geom::Rect* rr = r.object_rect(rp.r_id);
      const geom::Rect* sr = s.object_rect(rp.s_id);
      if (rr == nullptr || sr == nullptr) {
        MutexLock lock(&state.mu);
        if (state.first_error.ok()) {
          state.first_error = Status::Internal(
              "shard-pair result references an object id unknown to the "
              "partition");
        }
        return;
      }
      MergeEntry e;
      e.key = geom::MinDistanceKey(*rr, *sr, metric);
      e.pair = rp;
      run.push_back(e);
    }
    // Canonical within-run order; inside a tie plateau the raw list
    // follows the pair-local discovery order, which means nothing once
    // runs interleave.
    std::sort(run.begin(), run.end(), MergeLess);

    pair_stats.pairs_produced = 0;  // re-credited from the merged output
    pair_stats.cpu_seconds = 0.0;   // the executor charges wall clock once
    if (phase == 0) GlobalShardMetrics().pairs_executed->Increment();
    MutexLock lock(&state.mu);
    if (phase == 0) ++state.executed;
    state.agg.Add(pair_stats);
    state.truncated[slot] = truncated ? 1 : 0;
    state.runs[slot] = std::move(run);
  };

  // Folds the worker-side counters into *stats and clears them, so each
  // fold (and with it each report phase delta) carries only the work since
  // the previous one. Callers must have joined the workers first.
  const auto fold_state = [&state, stats]() -> Status {
    MutexLock lock(&state.mu);
    if (!state.first_error.ok()) return state.first_error;
    stats->shard_pairs_pruned_cutoff += state.pruned_cutoff;
    stats->shard_pairs_executed += state.executed;
    state.pruned_cutoff = 0;
    state.executed = 0;
    stats->Add(state.agg);
    state.agg = JoinStats();
    return Status::OK();
  };

  {
    ThreadPool pool(options.threads, "amdj-shard");
    if (report != nullptr) report->BeginPhase("shard-probe", *stats);
    {
      const ScopedLatencyTimer probe_timer(
          GlobalShardMetrics().stage_probe_ns);
      std::vector<std::future<void>> futures;
      futures.reserve(survivors.size());
      for (size_t i = 0; i < survivors.size(); ++i) {
        futures.push_back(
            pool.Submit([&run_pair, i, k_probe] { run_pair(i, k_probe, 0); }));
      }
      for (std::future<void>& f : futures) f.get();
    }
    AMDJ_RETURN_IF_ERROR(fold_state());
    if (report != nullptr) {
      const geom::KeyVal pooled = cutoff.Current();
      if (std::isfinite(pooled.raw())) {
        report->OnCutoff("shard_probe_cutoff",
                         geom::KeyToDistance(pooled, metric).raw(), 0);
      }
      report->BeginPhase("shard-topup", *stats);
    }

    // --- Top-up: complete the pairs the probe cap truncated inside the
    // published cutoff K. A pair that returned fewer than k_probe results
    // was exhausted under a cutoff that only ever held values >= the final
    // K, so everything it dropped is outside the global top-k; a truncated
    // pair whose k_probe-th key landed below K may still owe results and
    // re-runs at full k — now against a tight bound, so it only walks its
    // actual share of the top-k.
    if (k_probe < k) {
      const ScopedLatencyTimer topup_timer(
          GlobalShardMetrics().stage_topup_ns);
      std::vector<size_t> topup;
      const geom::KeyVal published = cutoff.Current();
      {
        MutexLock lock(&state.mu);
        if (!state.first_error.ok()) return state.first_error;
        for (size_t i = 0; i < survivors.size(); ++i) {
          if (state.truncated[i] == 0 || state.runs[i].empty()) continue;
          // <= so a truncation boundary sitting exactly on the published
          // cutoff still tops up: the pair may hold further ties at that
          // key which belong in the output.
          if (state.runs[i].back().key <= published) topup.push_back(i);
        }
      }
      AMDJ_TRACE(tracer,
                 Instant("shard_topup",
                         {{"pairs", static_cast<double>(topup.size())},
                          {"cutoff_key", published.raw()}}));
      std::vector<std::future<void>> futures;
      futures.reserve(topup.size());
      for (const size_t i : topup) {
        futures.push_back(
            pool.Submit([&run_pair, i, k] { run_pair(i, k, 1); }));
      }
      for (std::future<void>& f : futures) f.get();
    }
  }

  AMDJ_RETURN_IF_ERROR(fold_state());
  std::vector<std::vector<MergeEntry>> runs;
  {
    MutexLock lock(&state.mu);  // workers joined; taken for the annotations
    runs = std::move(state.runs);  // pruned slots stay as empty runs
  }
  if (report != nullptr) report->BeginPhase("shard-merge", *stats);

  std::vector<ResultPair> out;
  {
    const ScopedLatencyTimer merge_timer(GlobalShardMetrics().stage_merge_ns);
    TraceSpan merge_span(tracer, "shard_merge",
                         {{"runs", static_cast<double>(runs.size())}});
    const std::vector<MergeEntry> merged =
        RankedMerge(runs, static_cast<size_t>(k), MergeLess);
    out.reserve(merged.size());
    for (const MergeEntry& e : merged) out.push_back(e.pair);
  }
  stats->pairs_produced += out.size();
  stats->cpu_seconds += wall.ElapsedSeconds();
  if (report != nullptr) {
    if (!out.empty()) {
      report->OnCutoff("final_dmax", out.back().distance, out.size());
    }
    report->Finish(*stats);
  }
  return out;
}

}  // namespace amdj::core

#ifndef AMDJ_CORE_EXPANSION_H_
#define AMDJ_CORE_EXPANSION_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/pair_entry.h"
#include "rtree/rtree.h"

namespace amdj::core {

/// The PairRef designating `tree`'s root node (level = height - 1).
PairRef RootRef(const rtree::RTree& tree);

/// Loads the children of a node ref as PairRefs: objects if the node is a
/// leaf, nodes one level down otherwise. Counts one node access on the
/// tree's buffer pool. `ref` must be a node ref.
Status FetchChildren(const rtree::RTree& tree, const PairRef& ref,
                     std::vector<PairRef>* out);

/// Children of a pair side: FetchChildren for a node, the ref itself for an
/// object (so object/node mixed pairs expand uniformly, degenerating to a
/// one-sided sweep).
Status ChildList(const rtree::RTree& tree, const PairRef& ref,
                 std::vector<PairRef>* out);

/// ChildList restricted to refs intersecting `window` (pass std::nullopt
/// for no restriction). Because a node MBR disjoint from the window cannot
/// contain an intersecting object, pruning at every level is exact.
Status ChildList(const rtree::RTree& tree, const PairRef& ref,
                 const std::optional<geom::Rect>& window,
                 std::vector<PairRef>* out);

}  // namespace amdj::core

#endif  // AMDJ_CORE_EXPANSION_H_

#ifndef AMDJ_CORE_RANKED_MERGE_H_
#define AMDJ_CORE_RANKED_MERGE_H_

#include <cstddef>
#include <queue>
#include <vector>

namespace amdj::core {

/// K-way ranked merge: returns the first `limit` elements of the merged
/// sequence of `runs` under `less`. Each run must already be sorted by
/// `less`. Elements that compare equal resolve by run index (lower run
/// first), so the output is deterministic for any input; when `less` is a
/// total order over the actual elements — as the shard executor's
/// (key, r_id, s_id) order is, every object pair existing exactly once —
/// the output does not even depend on how elements were distributed over
/// runs. O(output * log runs), the standard tournament over run heads.
template <typename T, typename Less>
std::vector<T> RankedMerge(const std::vector<std::vector<T>>& runs,
                           size_t limit, Less less) {
  struct Cursor {
    size_t run;
    size_t pos;
  };
  const auto after = [&runs, &less](const Cursor& a, const Cursor& b) {
    const T& ea = runs[a.run][a.pos];
    const T& eb = runs[b.run][b.pos];
    if (less(ea, eb)) return false;
    if (less(eb, ea)) return true;
    return a.run > b.run;
  };
  // amdj-tidy: raw-priority-queue-ok — generic k-way merge template: the
  // element type T and ordering come from the caller (shard results merge
  // on strong-typed MergeEntry keys), so there is no distance member here
  // to strengthen and no spill concern for a #runs-sized head heap.
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heads(
      after);
  size_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].size();
    if (!runs[i].empty()) heads.push({i, 0});
  }
  std::vector<T> out;
  out.reserve(total < limit ? total : limit);
  while (!heads.empty() && out.size() < limit) {
    const Cursor c = heads.top();
    heads.pop();
    out.push_back(runs[c.run][c.pos]);
    if (c.pos + 1 < runs[c.run].size()) heads.push({c.run, c.pos + 1});
  }
  return out;
}

}  // namespace amdj::core

#endif  // AMDJ_CORE_RANKED_MERGE_H_
